// Package live is the mutation tier: it keeps the conflict hypergraph,
// its cluster arenas, and the component decomposition of a served dataset
// incrementally maintainable under tuple insert/update/delete, so a
// mutation batch costs work proportional to what it touches instead of a
// full re-analysis.
//
// # Model
//
// A Table owns the current (instance, generation, session engine) triple
// of one dataset. Every published generation is immutable: Apply builds a
// NEW instance (sharing unchanged row and code-column memory with its
// predecessor), splices the per-FD violation clusters it maintains as
// live LHS-equivalence groups, derives the next component evaluator from
// the previous one (components.SpliceEvaluator — only dirtied components
// lose their memoized cover state), seeds a NEW session engine with the
// spliced roots, and atomically swaps the triple. Snapshot hands out the
// current triple; an in-flight sweep keeps using the engine it acquired —
// including mid-sweep re-acquires during materialization — and therefore
// finishes against a consistent snapshot, while the next sweep sees the
// new generation. Snapshot isolation is structural, not scheduled.
//
// # Group maintenance
//
// Per engine root (FD set) the table keeps, per FD, a map from the LHS
// projection code (relation.ProjCoder over table-shared dictionaries) to
// the group of rows carrying that projection, with a per-group multiset
// of RHS codes. A group is a violation cluster iff it has ≥2 members and
// ≥2 distinct RHS codes. The cluster list of every FD is kept in the
// canonical order conflict.NewFiltered produces — ascending by leading
// member — which makes the spliced analysis bit-identical to a rebuild
// from scratch (conflict.NewFromClusters), including the order-sensitive
// capped samplers. Deletes renumber by swap-remove (the last row takes
// the deleted row's index), and the renumbering is applied to the moved
// row's groups as part of the batch; Result.Moves reports it to callers.
//
// Group member slices are aliased by published analyses, so the first
// touch of a group in a batch copies its member slice (copy-on-write at
// group granularity); older generations keep reading their snapshots.
//
// # Durability hook
//
// Apply takes a precommit callback between building the new instance and
// committing it: the serving layer persists the snapshot (and the
// dataset's generation sidecar) there, so an I/O failure aborts the batch
// with the table — and every sweep — still on the old generation.
package live

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"relatrust/internal/components"
	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/session"
)

// ErrBadOp marks a mutation batch rejected by validation (row out of
// range, wrong tuple width, unknown op kind); match with errors.Is. A
// rejected batch changes nothing.
var ErrBadOp = errors.New("live: invalid mutation op")

// OpKind selects what a mutation op does.
type OpKind int

const (
	// OpInsert appends Tuple as a new row.
	OpInsert OpKind = iota
	// OpUpdate replaces row Row with Tuple.
	OpUpdate
	// OpDelete removes row Row; the last row takes its index (swap-remove).
	OpDelete
)

// Op is one mutation. Row indices address the instance as left by the
// preceding ops of the same batch (inserts append, deletes swap-remove).
type Op struct {
	Kind  OpKind
	Row   int            // update/delete target
	Tuple relation.Tuple // insert/update payload
}

// Move is one swap-remove renumbering: the row previously at From now
// lives at To.
type Move struct {
	From, To int32
}

// Result reports what a batch did.
type Result struct {
	// Generation is the table's generation after the batch (unchanged when
	// every op was a no-op).
	Generation int64
	// Applied counts the ops that actually changed the instance (no-op
	// updates are dropped).
	Applied int
	// Moves lists the swap-remove renumberings, in application order.
	Moves []Move
	// ComponentsDirtied is how many conflict-hypergraph components lost
	// their memoized cover state to this batch (the maximum across the
	// maintained roots; 0 when no root had a decomposition yet).
	ComponentsDirtied int
	// NewN is the instance's row count after the batch.
	NewN int
}

// Stats is a table's lifetime mutation effort, for /statz and /metrics.
type Stats struct {
	MutationsApplied  int64
	ComponentsDirtied int64
}

// Table is the live mutation state of one dataset. Safe for concurrent
// use; Apply serializes, Snapshot is cheap.
type Table struct {
	mu  sync.Mutex
	in  *relation.Instance
	eng *session.Engine
	gen int64

	// dicts are the table's grow-only per-attribute dictionaries; cols the
	// current generation's code columns under them. Built lazily on first
	// Apply and dropped by Evict. Columns of attributes a batch does not
	// touch are aliased, not copied, into the next generation.
	dicts []*relation.Dict
	cols  [][]int32

	// sigmas holds one group state per engine root FD set, cold-built from
	// the current instance when a root first appears.
	sigmas []*sigmaState

	mutationsApplied  int64
	componentsDirtied int64
}

// NewTable returns a table serving the instance at the given generation.
func NewTable(in *relation.Instance, generation int64) *Table {
	return &Table{in: in, eng: session.NewAt(in, generation), gen: generation}
}

// Snapshot returns the current (instance, engine, generation) triple. The
// triple is internally consistent and immutable: a later Apply swaps in a
// new one but never touches this one, so callers may sweep against it for
// as long as they like.
func (t *Table) Snapshot() (*relation.Instance, *session.Engine, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.in, t.eng, t.gen
}

// Generation returns the current mutation generation.
func (t *Table) Generation() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen
}

// Stats returns the lifetime mutation counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{MutationsApplied: t.mutationsApplied, ComponentsDirtied: t.componentsDirtied}
}

// Evict drops the table's warm incremental state — group maps, shared
// dictionaries, code columns — and rebinds a fresh engine to the current
// instance, for memory-pressure eviction (the serving layer's warm-session
// LRU). The instance and generation are untouched; the next Apply
// cold-rebuilds what it needs.
func (t *Table) Evict() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.eng = session.NewAt(t.in, t.gen)
	t.sigmas = nil
	t.dicts = nil
	t.cols = nil
}

// normOp is one validated, normalized mutation with the row contents the
// commit replay needs (rows are immutable once published, so these are
// snapshots by construction).
type normOp struct {
	kind      OpKind
	row       int32
	oldTuple  relation.Tuple // update/delete: the row being replaced/removed
	newTuple  relation.Tuple // insert/update: the row being written
	moved     relation.Tuple // delete: content of the renumbered row, nil if none
	movedFrom int32          // delete: the renumbered row's previous index
}

// Apply runs a mutation batch in three phases: (1) build the next
// instance and its code columns without touching any published state; (2)
// run precommit (nil to skip) against the new instance — an error aborts
// the batch with nothing changed; (3) commit: splice the cluster lists
// and component evaluators of every engine root and swap in the next
// (instance, engine, generation) triple.
func (t *Table) Apply(ops []Op, precommit func(*relation.Instance) error) (*Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	width := t.in.Schema.Width()
	oldN := t.in.N()

	// ---- Phase 1: pure. Validate and normalize the ops against a private
	// copy of the row-pointer slice; nothing published is written.
	tuples := append(make([]relation.Tuple, 0, oldN+len(ops)), t.in.Tuples...)
	oldPos := make([]int32, oldN) // evolving current→old position map
	for i := range oldPos {
		oldPos[i] = int32(i)
	}
	var log []normOp
	var moves []Move
	var touched relation.AttrSet
	lengthChanged := false
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			if len(op.Tuple) != width {
				return nil, fmt.Errorf("%w: op %d: tuple width %d does not match schema width %d", ErrBadOp, i, len(op.Tuple), width)
			}
			nt := op.Tuple.Clone()
			tuples = append(tuples, nt)
			oldPos = append(oldPos, -1)
			log = append(log, normOp{kind: OpInsert, row: int32(len(tuples) - 1), newTuple: nt})
			lengthChanged = true
		case OpUpdate:
			if op.Row < 0 || op.Row >= len(tuples) {
				return nil, fmt.Errorf("%w: op %d: row %d outside [0, %d)", ErrBadOp, i, op.Row, len(tuples))
			}
			if len(op.Tuple) != width {
				return nil, fmt.Errorf("%w: op %d: tuple width %d does not match schema width %d", ErrBadOp, i, len(op.Tuple), width)
			}
			old := tuples[op.Row]
			if old.Equal(op.Tuple) {
				continue // no-op update: drop it
			}
			nt := op.Tuple.Clone()
			for a := 0; a < width; a++ {
				if !old[a].Equal(nt[a]) {
					touched = touched.Add(a)
				}
			}
			tuples[op.Row] = nt
			log = append(log, normOp{kind: OpUpdate, row: int32(op.Row), oldTuple: old, newTuple: nt})
		case OpDelete:
			if op.Row < 0 || op.Row >= len(tuples) {
				return nil, fmt.Errorf("%w: op %d: row %d outside [0, %d)", ErrBadOp, i, op.Row, len(tuples))
			}
			last := len(tuples) - 1
			no := normOp{kind: OpDelete, row: int32(op.Row), oldTuple: tuples[op.Row]}
			if op.Row != last {
				no.moved = tuples[last]
				no.movedFrom = int32(last)
				moves = append(moves, Move{From: int32(last), To: int32(op.Row)})
				tuples[op.Row] = tuples[last]
				oldPos[op.Row] = oldPos[last]
			}
			tuples = tuples[:last]
			oldPos = oldPos[:last]
			log = append(log, no)
			lengthChanged = true
		default:
			return nil, fmt.Errorf("%w: op %d: unknown kind %d", ErrBadOp, i, op.Kind)
		}
	}
	if len(log) == 0 {
		return &Result{Generation: t.gen, NewN: oldN}, nil
	}

	t.ensureCols()
	newIn := &relation.Instance{Schema: t.in.Schema, Tuples: tuples}
	newCols := make([][]int32, width)
	for a := 0; a < width; a++ {
		if !lengthChanged && !touched.Contains(a) {
			newCols[a] = t.cols[a] // untouched column: alias, don't copy
			continue
		}
		col := append(make([]int32, 0, max(len(tuples), oldN)), t.cols[a]...)
		for _, op := range log {
			switch op.kind {
			case OpInsert:
				col = append(col, t.dicts[a].Code(op.newTuple[a]))
			case OpUpdate:
				col[op.row] = t.dicts[a].Code(op.newTuple[a])
			case OpDelete:
				last := len(col) - 1
				if op.moved != nil {
					col[op.row] = col[last]
				}
				col = col[:last]
			}
		}
		newCols[a] = col
	}
	for a := 0; a < width; a++ {
		newIn.SetCodes(a, newCols[a], int32(t.dicts[a].Len()))
	}

	// ---- Phase 2: durability hook. An error leaves the table — and every
	// published generation — exactly as it was.
	if precommit != nil {
		if err := precommit(newIn); err != nil {
			return nil, err
		}
	}

	// ---- Phase 3: commit. Splice the group state of every engine root
	// and publish the next generation.
	newGen := t.gen + 1
	roots := t.eng.ExportRoots()
	for _, r := range roots {
		t.stateFor(r.Sigma) // cold-build missing states over the pre-batch instance
	}
	for _, st := range t.sigmas {
		st.replay(log, t.dicts, newGen)
	}
	seeds := make([]session.Root, 0, len(roots))
	maxDirtied := 0
	for _, r := range roots {
		st := t.stateFor(r.Sigma)
		clusters, info := st.endBatch(newGen)
		info.OldPos = oldPos
		an := conflict.NewFromClusters(newIn, st.sigma, clusters)
		var ev *components.Evaluator
		if r.Evaluator != nil {
			var dirtied int
			ev, dirtied = components.SpliceEvaluator(r.Evaluator, an, info)
			if dirtied > maxDirtied {
				maxDirtied = dirtied
			}
		}
		seeds = append(seeds, session.Root{Sigma: st.sigma, Analysis: an, Evaluator: ev})
	}

	t.in = newIn
	t.cols = newCols
	t.gen = newGen
	t.eng = session.NewSeeded(newIn, newGen, seeds)
	t.mutationsApplied += int64(len(log))
	t.componentsDirtied += int64(maxDirtied)
	return &Result{
		Generation:        newGen,
		Applied:           len(log),
		Moves:             moves,
		ComponentsDirtied: maxDirtied,
		NewN:              len(tuples),
	}, nil
}

// ensureCols builds the shared dictionaries and the current generation's
// code columns on first use after construction or Evict.
func (t *Table) ensureCols() {
	if t.cols != nil {
		return
	}
	width := t.in.Schema.Width()
	t.dicts = relation.NewDicts(width)
	t.cols = make([][]int32, width)
	for a := 0; a < width; a++ {
		col := make([]int32, t.in.N())
		for i, tup := range t.in.Tuples {
			col[i] = t.dicts[a].Code(tup[a])
		}
		t.cols[a] = col
	}
}

// stateFor returns the group state of sigma, cold-building it from the
// current (pre-batch) instance on first request.
func (t *Table) stateFor(sigma fd.Set) *sigmaState {
	for _, st := range t.sigmas {
		if st.sigma.Equal(sigma) {
			return st
		}
	}
	st := newSigmaState(t.in, sigma, t.dicts)
	t.sigmas = append(t.sigmas, st)
	return st
}

// liveGroup is one LHS-equivalence group of one FD: its member rows
// (ascending) and the multiset of their RHS codes. idx is its position in
// the FD's cluster list when violating, -1 otherwise; stamp marks the
// last batch that touched it (first touch per batch copies members, since
// published analyses alias the slice).
type liveGroup struct {
	members []int32
	rhs     map[int32]int
	idx     int32
	stamp   int64
}

func (g *liveGroup) violating() bool {
	return len(g.members) >= 2 && len(g.rhs) >= 2
}

func (g *liveGroup) insertMember(row int32) {
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i] >= row })
	g.members = append(g.members, 0)
	copy(g.members[i+1:], g.members[i:])
	g.members[i] = row
}

func (g *liveGroup) removeMember(row int32) {
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i] >= row })
	g.members = append(g.members[:i], g.members[i+1:]...)
}

// fdGroups is the live group state of one FD of one root set.
type fdGroups struct {
	f     fd.FD
	coder *relation.ProjCoder
	// groups maps the LHS projection code to the group carrying it. Groups
	// are kept (possibly empty) once created — a later insert may refill
	// them.
	groups   map[int32]*liveGroup
	clusters []*liveGroup // violating groups, ascending by leading member

	// per-batch scratch
	dirty        []*liveGroup
	oldDirtyReps []int32
}

// touch registers the group as dirtied by the current batch: on the first
// touch its member slice is copied (published analyses alias the old one)
// and, if it was a published cluster, a representative pre-batch member
// is recorded for the component splice. Any renumbering of a member
// touches the group, so at first-touch time the members are still exactly
// the pre-batch ids.
func (fg *fdGroups) touch(g *liveGroup, batch int64) {
	if g.stamp == batch {
		return
	}
	g.stamp = batch
	if g.idx >= 0 {
		fg.oldDirtyReps = append(fg.oldDirtyReps, g.members[0])
	}
	g.members = append([]int32(nil), g.members...)
	fg.dirty = append(fg.dirty, g)
}

// sigmaState is the live group state of one engine root (FD set).
type sigmaState struct {
	sigma fd.Set
	fds   []*fdGroups
}

// newSigmaState cold-builds the group state of sigma over the instance:
// one full partition pass per FD, the same grouping NewFiltered runs. Its
// violating-cluster lists equal — content and canonical order — the
// clusters of any analysis of (in, sigma), so a root analysis built
// before the state existed stays consistent with it.
func newSigmaState(in *relation.Instance, sigma fd.Set, dicts []*relation.Dict) *sigmaState {
	st := &sigmaState{sigma: sigma.Clone()}
	part := relation.NewPartitioner(in)
	for _, f := range sigma {
		fg := &fdGroups{
			f:      f,
			coder:  relation.NewProjCoder(f.LHS, dicts),
			groups: make(map[int32]*liveGroup),
		}
		part.BeginAll()
		part.RefineSet(f.LHS)
		pt := part.Partition()
		for gi := 0; gi < pt.NumGroups(); gi++ {
			g := pt.Group(gi)
			lg := &liveGroup{
				members: append([]int32(nil), g...),
				rhs:     make(map[int32]int, 2),
				idx:     -1,
			}
			for _, row := range g {
				lg.rhs[dicts[f.RHS].Code(in.Tuples[row][f.RHS])]++
			}
			fg.groups[fg.coder.Code(in.Tuples[g[0]])] = lg
			if lg.violating() {
				fg.clusters = append(fg.clusters, lg)
			}
		}
		sort.Slice(fg.clusters, func(i, j int) bool {
			return fg.clusters[i].members[0] < fg.clusters[j].members[0]
		})
		for i, lg := range fg.clusters {
			lg.idx = int32(i)
		}
		st.fds = append(st.fds, fg)
	}
	return st
}

// replay applies the batch's normalized ops to the group state.
func (st *sigmaState) replay(log []normOp, dicts []*relation.Dict, batch int64) {
	for _, op := range log {
		switch op.kind {
		case OpInsert:
			st.add(op.row, op.newTuple, dicts, batch)
		case OpUpdate:
			st.remove(op.row, op.oldTuple, dicts, batch)
			st.add(op.row, op.newTuple, dicts, batch)
		case OpDelete:
			st.remove(op.row, op.oldTuple, dicts, batch)
			if op.moved != nil {
				st.move(op.movedFrom, op.row, op.moved, batch)
			}
		}
	}
}

func (st *sigmaState) add(row int32, tup relation.Tuple, dicts []*relation.Dict, batch int64) {
	for _, fg := range st.fds {
		key := fg.coder.Code(tup)
		g := fg.groups[key]
		if g == nil {
			g = &liveGroup{idx: -1, rhs: make(map[int32]int, 2)}
			fg.groups[key] = g
		}
		fg.touch(g, batch)
		g.insertMember(row)
		g.rhs[dicts[fg.f.RHS].Code(tup[fg.f.RHS])]++
	}
}

func (st *sigmaState) remove(row int32, tup relation.Tuple, dicts []*relation.Dict, batch int64) {
	for _, fg := range st.fds {
		g := fg.groups[fg.coder.Code(tup)]
		fg.touch(g, batch)
		g.removeMember(row)
		rc := dicts[fg.f.RHS].Code(tup[fg.f.RHS])
		if g.rhs[rc]--; g.rhs[rc] == 0 {
			delete(g.rhs, rc)
		}
	}
}

// move renumbers one member (content tup) from index from to index to in
// every group containing it; the RHS multiset is unchanged.
func (st *sigmaState) move(from, to int32, tup relation.Tuple, batch int64) {
	for _, fg := range st.fds {
		g := fg.groups[fg.coder.Code(tup)]
		fg.touch(g, batch)
		g.removeMember(from)
		g.insertMember(to)
	}
}

// endBatch rebuilds each FD's cluster list from its dirtied groups and
// returns the new cluster slices (for conflict.NewFromClusters) plus the
// splice description for components.SpliceEvaluator (OldPos is filled by
// the caller). Untouched clusters keep their relative order and are
// merged with the re-sorted dirty ones, preserving the canonical
// ascending-by-leading-member order.
func (st *sigmaState) endBatch(batch int64) ([][][]int32, components.SpliceInfo) {
	clusters := make([][][]int32, len(st.fds))
	var info components.SpliceInfo
	info.OldToNew = make([][]int32, len(st.fds))
	for fi, fg := range st.fds {
		old := fg.clusters
		o2n := make([]int32, len(old))
		if len(fg.dirty) == 0 {
			for i := range o2n {
				o2n[i] = int32(i)
			}
			info.OldToNew[fi] = o2n
			cl := make([][]int32, len(old))
			for i, g := range old {
				cl[i] = g.members
			}
			clusters[fi] = cl
			continue
		}
		info.OldDirtyTuples = append(info.OldDirtyTuples, fg.oldDirtyReps...)
		for i := range o2n {
			o2n[i] = -1
		}
		surv := make([]*liveGroup, 0, len(old))
		for _, g := range old {
			if g.stamp != batch {
				surv = append(surv, g)
			}
		}
		viol := make([]*liveGroup, 0, len(fg.dirty))
		for _, g := range fg.dirty {
			if g.violating() {
				viol = append(viol, g)
			} else {
				g.idx = -1
			}
		}
		sort.Slice(viol, func(i, j int) bool { return viol[i].members[0] < viol[j].members[0] })
		merged := make([]*liveGroup, 0, len(surv)+len(viol))
		si, vi := 0, 0
		for si < len(surv) || vi < len(viol) {
			if vi == len(viol) || (si < len(surv) && surv[si].members[0] < viol[vi].members[0]) {
				merged = append(merged, surv[si])
				si++
			} else {
				merged = append(merged, viol[vi])
				vi++
			}
		}
		cl := make([][]int32, len(merged))
		for pos, g := range merged {
			cl[pos] = g.members
			if g.stamp == batch {
				info.Dirty = append(info.Dirty, conflict.ClusterRef{FD: int32(fi), Cluster: int32(pos)})
			} else {
				o2n[g.idx] = int32(pos)
			}
		}
		for pos, g := range merged {
			g.idx = int32(pos)
		}
		info.OldToNew[fi] = o2n
		fg.clusters = merged
		fg.dirty = fg.dirty[:0]
		fg.oldDirtyReps = fg.oldDirtyReps[:0]
		clusters[fi] = cl
	}
	return clusters, info
}
