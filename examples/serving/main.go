// Serving example: run the relatrustd HTTP service in-process, register a
// dataset over the wire, and stream the repair frontier as NDJSON — the
// same calls a curl client would make against a deployed daemon.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"relatrust/internal/server"
)

const csvData = `City,ZIP,State
Springfield,62701,IL
Springfield,62701,IL
Springfield,97477,OR
Shelbyville,46176,IN
Shelbyville,46176,TN
`

func main() {
	// Serve on an ephemeral loopback port, exactly like cmd/relatrustd.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Options{})
	go func() { _ = http.Serve(ln, srv) }()
	base := "http://" + ln.Addr().String()

	// Register the dataset: one warm repair session from here on.
	body, _ := json.Marshal(map[string]string{"name": "cities", "csv": csvData})
	resp, err := http.Post(base+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("registered dataset: HTTP", resp.StatusCode)

	// Stream the frontier; each NDJSON line arrives the moment its trust
	// level finishes.
	body, _ = json.Marshal(map[string]any{
		"dataset": "cities",
		"fds":     "City->ZIP; City->State",
		"seed":    1,
	})
	resp, err = http.Post(base+"/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"error"`) {
			log.Fatalf("stream error: %s", line)
		}
		var row struct {
			Level       int    `json:"level"`
			Tau         int    `json:"tau"`
			Sigma       string `json:"sigma"`
			CellChanges int    `json:"cell_changes"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level %d: τ=%d  Σ'=%s  cell changes=%d\n",
			row.Level, row.Tau, row.Sigma, row.CellChanges)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
