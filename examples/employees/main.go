// Employees reproduces Example 1 (Figure 1) of the paper: a person table
// collected from several sources, with the asserted FD
//
//	Surname, GivenName → Income
//
// which is correct for the Western names but wrong for the Chinese names
// (surname + given name does not identify a person). The repairs across
// the trust spectrum show exactly the alternatives the paper discusses:
// fix the incomes, or append BirthDate (and then Phone) to the FD.
//
// Run with: go run ./examples/employees
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"relatrust"
)

const people = `GivenName,Surname,BirthDate,Gender,Phone,Income
Jack,White,5 Jan 1980,Male,923-234-4532,60k
Sam,McCarthy,19 Jul 1945,Male,989-321-4232,92k
Danielle,Blake,9 Dec 1970,Female,817-213-1211,120k
Matthew,Webb,23 Aug 1985,Male,246-481-0992,87k
Danielle,Blake,9 Dec 1970,Female,817-988-9211,100k
Hong,Li,27 Oct 1972,Female,591-977-1244,90k
Jian,Zhang,14 Apr 1990,Male,912-143-4981,55k
Ning,Wu,3 Nov 1982,Male,313-134-9241,90k
Hong,Li,8 Mar 1979,Female,498-214-5822,84k
Ning,Wu,8 Nov 1982,Male,323-456-3452,95k
`

func main() {
	inst, err := relatrust.ReadCSV(strings.NewReader(people))
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(inst.Schema, "Surname,GivenName->Income")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the person table of the paper's Figure 1:")
	fmt.Println(inst)
	fmt.Printf("asserted FD: %s\n", sigma.Format(inst.Schema))

	for _, v := range relatrust.Violations(inst, sigma, 0) {
		fmt.Printf("  violation: t%d vs t%d\n", v.T1+1, v.T2+1)
	}
	fmt.Println()

	// Weight appended attributes by their distinct-value counts, as the
	// paper's experiments do: BirthDate (8 values) is cheaper to append
	// than Phone (10 values, a key). Options.Progress makes the sweep
	// observable — useful when the table is millions of rows, invisible
	// here only because the example is tiny.
	opt := relatrust.Options{
		Weights: relatrust.DistinctCountWeights(inst),
		Seed:    3,
		Progress: func(ev relatrust.ProgressEvent) {
			if ev.Kind == relatrust.ProgressSweepFinished {
				fmt.Printf("(sweep visited %d search states)\n\n", ev.Visited)
			}
		},
	}
	rp, err := relatrust.NewRepairer(inst, sigma, opt)
	if err != nil {
		log.Fatal(err)
	}
	i := 0
	for r, err := range rp.Frontier(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		i++
		fmt.Printf("--- suggestion %d (allow at most %d cell changes) ---\n", i, r.Tau)
		fmt.Printf("Σ' = %s\n", r.Sigma.Format(inst.Schema))
		if r.Data.NumChanges() == 0 {
			fmt.Println("data unchanged")
		}
		for _, c := range r.Data.Changed {
			fmt.Printf("  change %s: %s → %s\n", c.Format(inst.Schema),
				inst.Tuples[c.Tuple][c.Attr], r.Data.Instance.Tuples[c.Tuple][c.Attr])
		}
		fmt.Println()
	}

	fmt.Println("Interpretation (matching Section 1 of the paper):")
	fmt.Println(" * trusting the FD fully means rewriting the incomes of the")
	fmt.Println("   duplicate-looking people (t5/t3, t9/t6, t10/t8);")
	fmt.Println(" * a middle level appends BirthDate and only reconciles the")
	fmt.Println("   true duplicates (Danielle Blake, Ning Wu);")
	fmt.Println(" * trusting the data fully appends Phone (or BirthDate+Phone),")
	fmt.Println("   keeping every tuple as-is.")
}
