// Interactive simulates a human-in-the-loop cleaning session built from
// three pieces of the library: sampled alternative repairs (the paper's
// reference [3] workflow), pinned cells as hard constraints, and the
// incremental violation tracker that scores each candidate edit without
// rescanning.
//
// Run with: go run ./examples/interactive
package main

import (
	"context"
	"fmt"
	"log"

	"relatrust"

	"relatrust/internal/incremental"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

func main() {
	in := testkit.Build([]string{"Employee", "Dept", "Manager"}, [][]string{
		{"ann", "sales", "pat"},
		{"bob", "sales", "sam"}, // disagrees with ann on sales' manager
		{"cat", "eng", "lee"},
		{"dan", "eng", "lee"},
		{"eve", "sales", "pat"},
	})
	sigma, err := relatrust.ParseFDs(in.Schema, "Dept->Manager")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(in)

	// One Repairer serves the whole interactive session: sampling and the
	// pinned repair below share its warm analysis state.
	ctx := context.Background()
	rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: how many ways can this be fixed? Sample the repair space.
	samples, err := rp.Sample(ctx, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the violation has %d distinct minimal resolutions:\n", len(samples))
	for i, s := range samples {
		for _, c := range s.Changed {
			fmt.Printf("  option %d: set %s from %s to %s\n", i+1,
				c.Format(in.Schema), in.Tuples[c.Tuple][c.Attr], s.Instance.Tuples[c.Tuple][c.Attr])
		}
	}

	// Step 2: the analyst knows bob's record was hand-checked — pin it.
	pinned := map[relatrust.CellRef]bool{}
	for a := 0; a < in.Schema.Width(); a++ {
		pinned[relatrust.CellRef{Tuple: 1, Attr: a}] = true
	}
	rep, err := rp.RepairDataOnly(ctx, pinned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith bob's tuple pinned as ground truth, the repair becomes:")
	for _, c := range rep.Changed {
		fmt.Printf("  %s: %s → %s\n", c.Format(in.Schema),
			in.Tuples[c.Tuple][c.Attr], rep.Instance.Tuples[c.Tuple][c.Attr])
	}

	// Step 3: replay the accepted repair through the incremental tracker,
	// watching the violation count fall edit by edit.
	tr := incremental.New(in.Clone(), sigma)
	fmt.Printf("\nviolating pairs before: %d\n", tr.ViolatingPairs())
	deltas, err := tr.ApplyRepair(rep.Changed, rep.Instance)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range deltas {
		fmt.Printf("  edit %d: Δpairs = %+d\n", i+1, d)
	}
	fmt.Printf("violating pairs after: %d (satisfied = %v)\n", tr.ViolatingPairs(), tr.Satisfied())

	// Step 4: an analyst tries a further manual edit; the tracker warns
	// immediately that it would re-break the FD.
	if d, _ := tr.Set(4, in.Schema.Index("Manager"), relation.Const("pat")); d > 0 {
		fmt.Printf("\nmanual edit of eve's manager would create %d new violating pair(s) — rejected\n", d)
		_, _ = tr.Set(4, in.Schema.Index("Manager"), rep.Instance.Tuples[4][in.Schema.Index("Manager")])
	}
	fmt.Printf("final state satisfied: %v\n", tr.Satisfied())
}
