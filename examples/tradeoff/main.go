// Tradeoff sweeps the relative-trust parameter on a census-like workload
// with known ground truth and prints, per trust level, how close the
// suggested repair comes to undoing the injected damage — a miniature of
// the paper's Figure 7 experiment that you can read end to end.
//
// This example deliberately stays on the batch back-compat wrappers
// (SuggestRepairs, MaxBudget): existing code written against the
// pre-Repairer facade keeps working unchanged. See examples/quickstart
// and examples/employees for the streaming Repairer/Frontier API.
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"relatrust"

	"relatrust/internal/experiments"
	"relatrust/internal/fd"
	"relatrust/internal/gen"
)

func main() {
	// A 12-attribute census-like relation where the first six attributes
	// determine the seventh, 800 tuples. Then damage both sides of the
	// truth: remove half the FD's LHS and corrupt 3% of the tuples.
	spec := gen.SubSpec(gen.CensusSpec(), 12)
	sigma := fd.Set{gen.PaperFD(spec)}
	w, err := experiments.MakeWorkload(spec, sigma, 800, 0.5, 0.03, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean FD:     %s\n", w.SigmaC.Format(spec.Schema))
	fmt.Printf("perturbed FD: %s  (%d LHS attributes removed)\n",
		w.SigmaD.Format(spec.Schema), w.Removed[0].Len())
	fmt.Printf("injected cell errors: %d\n\n", len(w.Cells))

	opt := relatrust.Options{Weights: relatrust.DistinctCountWeights(w.Dirty), Seed: 7}
	repairs, err := relatrust.SuggestRepairs(w.Dirty, w.SigmaD, opt)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := relatrust.MaxBudget(w.Dirty, w.SigmaD, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-10s %-12s %-40s %s\n", "τ", "τr", "cell-chg", "Σ'", "quality vs ground truth")
	for _, r := range repairs {
		q, err := w.Evaluate(r)
		if err != nil {
			log.Fatal(err)
		}
		taur := float64(r.DeltaP) / float64(dp)
		fmt.Printf("%-8d %-10.1f%% %-11d %-40s %s\n",
			r.Tau, 100*taur, r.Data.NumChanges(), r.Sigma.Format(spec.Schema), q)
	}
	fmt.Println()
	fmt.Println("Reading the table: with both kinds of damage present, neither")
	fmt.Println("extreme wins — the best combined score sits at an intermediate")
	fmt.Println("trust level, which is the paper's core claim.")
}
