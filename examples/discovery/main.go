// Discovery walks the full experimental loop of the paper's Section 8.1 on
// a small scale: discover FDs from clean data (the TANE-style substrate),
// perturb the discovered FD, and recover it with the relative-trust
// repair — showing that the τr=0 end of the spectrum restores removed LHS
// attributes.
//
// Run with: go run ./examples/discovery
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"relatrust"

	"relatrust/internal/discovery"
	"relatrust/internal/fd"
	"relatrust/internal/gen"
	"relatrust/internal/relation"
)

func main() {
	// Clean data over 8 attributes in which attrs {0,1} determine attr 7.
	spec := gen.SubSpec(gen.CensusSpec(), 8)
	planted := fd.MustNew(relation.NewAttrSet(0, 1), 7)
	clean, err := gen.Generate(spec, fd.Set{planted}, 600, 21)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: discover minimal FDs from the clean instance.
	found, err := discovery.Discover(clean, discovery.Options{
		MaxLHS: 2,
		Attrs:  relation.NewAttrSet(0, 1, 2, 3, 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered minimal FDs (LHS ≤ 2, over 5 of the attributes):")
	for _, f := range found {
		fmt.Printf("  %s\n", f.Format(spec.Schema))
	}

	// Step 2: perturb the planted FD — drop one LHS attribute.
	p, err := gen.PerturbFDs(fd.Set{planted}, 0.5, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperturbed FD: %s (removed: %s)\n",
		p.Sigma.Format(spec.Schema), p.Removed[0].Names(spec.Schema))
	fmt.Printf("clean data satisfies it? %v (it over-fires)\n\n", relatrust.Satisfies(clean, p.Sigma))

	// Step 3: at τ=0 (full trust in the data) the repair must extend the
	// weakened FD until it holds again — recovering the removed attribute
	// or an equivalent one. Infeasible budgets surface as the structured
	// ErrNoRepairInBudget.
	opt := relatrust.Options{Weights: relatrust.DistinctCountWeights(clean), Seed: 4}
	rp, err := relatrust.NewRepairer(clean, p.Sigma, opt)
	if err != nil {
		log.Fatal(err)
	}
	r, err := rp.RepairWithBudget(context.Background(), 0)
	if errors.Is(err, relatrust.ErrNoRepairInBudget) {
		log.Fatal("no zero-change repair found")
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair at τ=0: %s\n", r.Sigma.Format(spec.Schema))
	fmt.Printf("cell changes: %d (must be 0)\n", r.Data.NumChanges())
	recovered := r.Sigma[0].LHS.Intersect(p.Removed[0])
	if !recovered.IsEmpty() {
		fmt.Printf("recovered removed attribute(s): %s\n", recovered.Names(spec.Schema))
	} else {
		fmt.Println("extended with an equivalent determinant instead of the removed attribute")
	}
}
