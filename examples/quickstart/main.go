// Quickstart: repair a small inconsistent table against one FD, streaming
// every suggested repair across the relative-trust spectrum as the sweep
// produces it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"relatrust"
)

const csv = `City,ZIP,State
Springfield,62701,IL
Springfield,62701,IL
Springfield,97477,OR
Shelbyville,46176,IN
Shelbyville,46176,TN
`

func main() {
	inst, err := relatrust.ReadCSV(strings.NewReader(csv))
	if err != nil {
		log.Fatal(err)
	}
	// The (wrong) belief: a city name determines its ZIP and state.
	sigma, err := relatrust.ParseFDs(inst.Schema, "City->ZIP; City->State")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("input:")
	fmt.Println(inst)
	fmt.Printf("Σ = %s\n", sigma.Format(inst.Schema))
	fmt.Printf("satisfied: %v\n\n", relatrust.Satisfies(inst, sigma))

	// A Repairer validates the pair once and owns the analysis state; the
	// Frontier iterator yields each Pareto point as its trust level
	// finishes (pass a cancellable context to make sweeps interruptible).
	rp, err := relatrust.NewRepairer(inst, sigma, relatrust.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	i := 0
	for r, err := range rp.Frontier(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		i++
		fmt.Printf("--- repair %d: τ ≤ %d ---\n", i, r.Tau)
		fmt.Printf("Σ' = %s   (FD distance %.3g)\n", r.Sigma.Format(inst.Schema), r.FDCost)
		fmt.Printf("cell changes: %d\n", r.Data.NumChanges())
		for _, c := range r.Data.Changed {
			fmt.Printf("  %s: %s → %s\n", c.Format(inst.Schema),
				inst.Tuples[c.Tuple][c.Attr], r.Data.Instance.Tuples[c.Tuple][c.Attr])
		}
		fmt.Println(r.Data.Instance)
	}
	fmt.Println("Each repair is one point on the trust spectrum: the first trusts")
	fmt.Println("the FDs (change data only), the last trusts the data (relax FDs).")
}
