// Conditional demonstrates the package's extension of relative trust to
// Conditional Functional Dependencies (CFDs) — the first future-work item
// of the paper's Section 10. A CFD applies only to tuples matching a
// pattern, so the "is the data wrong or is the rule wrong?" question gains
// a third answer: the rule may be right but over-scoped.
//
// Run with: go run ./examples/conditional
package main

import (
	"context"
	"fmt"
	"log"

	"relatrust/internal/cfd"
	"relatrust/internal/testkit"
)

func main() {
	// Addresses from two countries. In the US, a ZIP code determines the
	// city; in the UK, outward codes span districts, so the same rule is
	// simply wrong there.
	in := testkit.Build([]string{"CC", "ZIP", "City", "Street"}, [][]string{
		{"US", "62701", "Springfield", "Elm St"},
		{"US", "62701", "Springfeld", "Oak St"}, // typo: violates the US rule
		{"US", "10001", "New York", "5th Ave"},
		{"UK", "SW1", "London", "Abbey Rd"},
		{"UK", "SW1", "Westminster", "Long Ln"}, // fine in the UK
	})
	fmt.Println(in)

	// First try the unconditional FD: it fires on the UK pair too.
	plain, err := cfd.ParseSet(in.Schema, "ZIP->City")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unconditional %s: %d violations\n",
		plain.Format(in.Schema), len(plain.Violations(in, 0)))

	// The conditional version scopes the rule to CC=US.
	scoped, err := cfd.ParseSet(in.Schema, "CC,ZIP->City | US,_")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conditional   %s: %d violations\n\n",
		scoped.Format(in.Schema), len(scoped.Violations(in, 0)))

	// Repair under generous trust: only the genuine US typo is touched.
	r, err := cfd.RepairWithBudget(context.Background(), in, scoped, 4, cfd.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair with τ=4: %d change(s)\n", r.NumChanges())
	for _, c := range r.Changed {
		fmt.Printf("  %s: %s → %s\n", c.Format(in.Schema),
			in.Tuples[c.Tuple][c.Attr], r.Instance.Tuples[c.Tuple][c.Attr])
	}

	// And a constant pattern: every UK tuple must carry Region SW1A — the
	// two existing ones don't, and no rule relaxation can fix a constant
	// clash, so the budget must pay for them.
	constSet, err := cfd.ParseSet(in.Schema, "CC->ZIP | UK || SW1A")
	if err != nil {
		log.Fatal(err)
	}
	if r, _ := cfd.RepairWithBudget(context.Background(), in, constSet, 1, cfd.Config{}); r == nil {
		fmt.Println("\nconstant pattern with τ=1: infeasible (two tuples must change)")
	}
	r2, err := cfd.RepairWithBudget(context.Background(), in, constSet, 2, cfd.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constant pattern with τ=2: %d changes, satisfied=%v\n",
		r2.NumChanges(), r2.Set.SatisfiedBy(r2.Instance))
}
