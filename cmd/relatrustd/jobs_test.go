package main

// Daemon-level e2e for the durable job tier: -jobs-dir persists job
// records and frontier checkpoints across a full process stop/start, and
// the rebooted daemon serves the completed frontier from its result log
// without running a new sweep. Mid-sweep resume (graceful interrupt and
// simulated crash) is covered deterministically at the handler level in
// internal/server; this test pins the flag plumbing and boot sequencing.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestJobPersistsAcrossRestart(t *testing.T) {
	dataDir, jobsDir := t.TempDir(), t.TempDir()
	csvPath := filepath.Join(t.TempDir(), "paper.csv")
	csv := "A,B,C,D\n1,1,1,1\n1,2,1,3\n2,2,1,1\n2,3,4,3\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}

	var out1, err1 safeBuilder
	base1, stop1 := bootDaemon(t, &out1, &err1,
		"-data-dir", dataDir, "-jobs-dir", jobsDir, "-dataset", "paper="+csvPath)

	body, err := json.Marshal(map[string]any{"dataset": "paper", "fds": "A->B; C->D", "seed": 9})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base1+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", resp.StatusCode)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for job.State != "completed" {
		if time.Now().After(deadline) {
			t.Fatalf("job never completed; state %q", job.State)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(base1 + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	want := streamJobRows(t, base1, job.ID)
	if len(want) < 2 {
		t.Fatalf("first daemon streamed %d job rows", len(want))
	}
	if code := stop1(); code != 0 {
		t.Fatalf("first daemon exit code %d, stderr %q", code, err1.String())
	}

	var out2, err2 safeBuilder
	base2, stop2 := bootDaemon(t, &out2, &err2,
		"-data-dir", dataDir, "-jobs-dir", jobsDir)
	got := streamJobRows(t, base2, job.ID)
	if len(got) != len(want) {
		t.Fatalf("replayed frontier has %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d differs after restart:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	if code := stop2(); code != 0 {
		t.Fatalf("second daemon exit code %d, stderr %q", code, err2.String())
	}
	// The completed job rehydrated without a resumed sweep.
	if out := out2.String(); !strings.Contains(out, "resumed 0 job(s)") {
		t.Errorf("second boot stdout %q, want a resumed 0 job(s) line", out)
	}
}

// streamJobRows replays a job's stream and returns the raw frame lines,
// failing on any in-band error frame.
func streamJobRows(t *testing.T, base, id string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	var rows []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			t.Fatalf("stream error: %s", sc.Text())
		}
		rows = append(rows, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}
