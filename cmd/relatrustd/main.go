// Command relatrustd serves the relative-trust repair spectrum over HTTP.
//
// Usage:
//
//	relatrustd -addr :8080 [-dataset name=path.csv ...] [flags]
//
// Datasets can be preloaded from CSV files at startup with repeated
// -dataset flags, or registered at runtime via POST /v1/datasets. See
// package relatrust/internal/server for the endpoint, streaming, and
// cancellation model, and the README for curl examples.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight sweeps get a
// -drain window to finish; if it expires the remaining connections are
// closed — cancelling their sweeps through the same plumbing a client
// disconnect uses — and the process exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relatrust"

	"relatrust/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the daemon: flag parsing, preloading, and
// the serve-until-cancelled loop. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("relatrustd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		maxSweeps = fs.Int("max-sweeps", 2, "maximum concurrent repair sweeps per dataset; further requests wait")
		workers   = fs.Int("workers", 0, "default search parallelism per sweep (0 = GOMAXPROCS; requests may override)")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown window for in-flight requests")
		datasets  datasetFlags
	)
	fs.Var(&datasets, "dataset", "preload a dataset as name=path.csv (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	srv := server.New(server.Options{
		MaxSweepsPerDataset: *maxSweeps,
		Workers:             *workers,
	})
	for _, d := range datasets {
		in, err := relatrust.ReadCSVFile(d.path)
		if err != nil {
			fmt.Fprintln(stderr, "relatrustd:", err)
			return 1
		}
		info, err := srv.Register(d.name, in)
		if err != nil {
			fmt.Fprintln(stderr, "relatrustd:", err)
			return 1
		}
		fmt.Fprintf(stdout, "relatrustd: preloaded dataset %q (%d tuples × %d attributes)\n",
			info.Name, info.Tuples, len(info.Attributes))
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// The streaming endpoint writes for as long as a sweep runs, so
		// no WriteTimeout; per-sweep deadlines come from timeout_ms.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(stdout, "relatrustd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "relatrustd:", err)
		return 1
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Sweeps still running after the drain window: Close() tears the
		// connections down, which cancels their request contexts through
		// the same plumbing a client disconnect uses.
		_ = hs.Close()
		fmt.Fprintln(stderr, "relatrustd: shutdown: drain window expired, cancelled in-flight sweeps")
		return 1
	}
	if err != nil {
		fmt.Fprintln(stderr, "relatrustd: shutdown:", err)
		return 1
	}
	fmt.Fprintln(stdout, "relatrustd: shut down")
	return 0
}

// datasetFlags collects repeated -dataset name=path.csv flags.
type datasetFlags []struct{ name, path string }

func (d *datasetFlags) String() string {
	parts := make([]string, len(*d))
	for i, e := range *d {
		parts[i] = e.name + "=" + e.path
	}
	return strings.Join(parts, ",")
}

func (d *datasetFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.csv, got %q", v)
	}
	*d = append(*d, struct{ name, path string }{name, path})
	return nil
}
