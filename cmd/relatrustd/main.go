// Command relatrustd serves the relative-trust repair spectrum over HTTP.
//
// Usage:
//
//	relatrustd -addr :8080 [-data-dir dir] [-dataset name=path.csv ...] [flags]
//
// Datasets can be preloaded from CSV files at startup with repeated
// -dataset flags, or registered at runtime via POST /v1/datasets. With
// -data-dir, registered datasets persist as columnar snapshots in that
// directory and are rehydrated on the next boot, so a crash or restart
// loses no uploads (corrupt snapshots are quarantined, never fatal); a
// preload whose name a persisted dataset already holds is skipped.
// Datasets uploaded with no rules can have their FDs mined server-side:
// POST /v1/discover streams each discovered FD (and, in
// discover_then_repair mode, the frontier sweep over the mined set),
// and POST /v1/jobs/discover runs a mine as a durable, resumable job.
// See package relatrust/internal/server for the endpoint, streaming,
// and cancellation model, and the README for curl examples and
// operations notes.
//
// SIGINT/SIGTERM shut the server down gracefully: the server first stops
// admitting new sweeps (503 shutting_down), in-flight streams get the
// -drain window to finish, then the listener closes. If the window
// expires the remaining connections are closed — cancelling their sweeps
// through the same plumbing a client disconnect uses — and the process
// exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relatrust"

	"relatrust/internal/server"
	"relatrust/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the daemon: flag parsing, preloading, and
// the serve-until-cancelled loop. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("relatrustd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		maxSweeps = fs.Int("max-sweeps", 2, "maximum concurrent repair sweeps per dataset; excess requests are shed with 429")
		maxTotal  = fs.Int("max-total-sweeps", 0, "maximum concurrent repair sweeps across all datasets (0 = 8)")
		workers   = fs.Int("workers", 0, "default search parallelism per sweep (0 = GOMAXPROCS; requests may override)")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown window for in-flight requests")
		dataDir   = fs.String("data-dir", "", "directory for durable dataset snapshots (empty = in-memory registry only)")
		mmapSnaps = fs.Bool("mmap-snapshots", false, "memory-map snapshot files when loading datasets (falls back to buffered reads on any mmap failure)")
		jobsDir   = fs.String("jobs-dir", "", "directory for durable job records and frontier checkpoints (empty = in-memory jobs only)")
		maxWarm   = fs.Int("max-warm-sessions", 0, "maximum datasets keeping a warm session; least recently swept is evicted (0 = unbounded)")
		maxJobRes = fs.Int64("max-job-results-bytes", 0, "maximum bytes of finished jobs' result logs before the oldest are evicted (0 = unbounded)")
		datasets  datasetFlags
	)
	fs.Var(&datasets, "dataset", "preload a dataset as name=path.csv (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	opt := server.Options{
		MaxSweepsPerDataset: *maxSweeps,
		MaxConcurrentSweeps: *maxTotal,
		Workers:             *workers,
		MaxWarmSessions:     *maxWarm,
		MaxJobResultsBytes:  *maxJobRes,
	}
	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{Mmap: *mmapSnaps})
		if err != nil {
			fmt.Fprintln(stderr, "relatrustd:", err)
			return 1
		}
		opt.Store = st
	}
	if *jobsDir != "" {
		js, err := store.OpenJobs(*jobsDir, store.Options{})
		if err != nil {
			fmt.Fprintln(stderr, "relatrustd:", err)
			return 1
		}
		opt.JobStore = js
	}
	srv := server.New(opt)
	if opt.Store != nil {
		n, err := srv.Rehydrate()
		if err != nil {
			fmt.Fprintln(stderr, "relatrustd:", err)
			return 1
		}
		fmt.Fprintf(stdout, "relatrustd: rehydrated %d dataset(s) from %s\n", n, *dataDir)
	}
	for _, d := range datasets {
		in, err := relatrust.ReadCSVFile(d.path)
		if err != nil {
			fmt.Fprintln(stderr, "relatrustd:", err)
			return 1
		}
		info, err := srv.Register(d.name, in)
		if errors.Is(err, server.ErrDatasetExists) {
			// The persisted copy wins: re-preloading over a rehydrated
			// dataset would discard whatever the store holds.
			fmt.Fprintf(stdout, "relatrustd: dataset %q already persisted; skipping preload\n", d.name)
			continue
		}
		if err != nil {
			fmt.Fprintln(stderr, "relatrustd:", err)
			return 1
		}
		fmt.Fprintf(stdout, "relatrustd: preloaded dataset %q (%d tuples × %d attributes)\n",
			info.Name, info.Tuples, len(info.Attributes))
	}
	if opt.JobStore != nil {
		// After Rehydrate and the preloads, so resumed jobs find their
		// datasets. Jobs whose records still say "running" continue from
		// their last checkpointed τ; finished ones become streamable again.
		n, err := srv.RecoverJobs()
		if err != nil {
			fmt.Fprintln(stderr, "relatrustd:", err)
			return 1
		}
		fmt.Fprintf(stdout, "relatrustd: resumed %d job(s) from %s\n", n, *jobsDir)
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// The streaming endpoint writes for as long as a sweep runs, so
		// no WriteTimeout; per-sweep deadlines come from timeout_ms.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(stdout, "relatrustd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "relatrustd:", err)
		return 1
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop admitting sweeps first, so the drain below only waits for work
	// that was already running when the signal arrived.
	srv.BeginShutdown()
	err := hs.Shutdown(shutdownCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Sweeps still running after the drain window: Close() tears the
		// connections down, which cancels their request contexts through
		// the same plumbing a client disconnect uses. The sweeps then
		// unwind promptly; give them the grace of a short bounded wait so
		// the process does not exit under a mid-teardown race.
		_ = hs.Close()
		lateCtx, lateCancel := context.WithTimeout(context.Background(), time.Second)
		_ = srv.Drain(lateCtx)
		lateCancel()
		srv.Close()
		fmt.Fprintln(stderr, "relatrustd: shutdown: drain window expired, cancelled in-flight sweeps")
		return 1
	}
	if err != nil {
		srv.Close()
		fmt.Fprintln(stderr, "relatrustd: shutdown:", err)
		return 1
	}
	// The listener is closed and every request finished; drop the session
	// engines with the registry.
	srv.Close()
	fmt.Fprintln(stdout, "relatrustd: shut down")
	return 0
}

// datasetFlags collects repeated -dataset name=path.csv flags.
type datasetFlags []struct{ name, path string }

func (d *datasetFlags) String() string {
	parts := make([]string, len(*d))
	for i, e := range *d {
		parts[i] = e.name + "=" + e.path
	}
	return strings.Join(parts, ",")
}

func (d *datasetFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.csv, got %q", v)
	}
	*d = append(*d, struct{ name, path string }{name, path})
	return nil
}
