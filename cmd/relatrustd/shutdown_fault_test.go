//go:build faultinject

package main

// Shutdown-under-load e2e (go test -tags faultinject): a fault point holds
// a sweep mid-stream while the daemon is told to shut down with a short
// drain window, so the test observes the full degraded path — drain expiry,
// forced connection teardown, and a non-zero exit.

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
	"time"

	"relatrust/internal/faultinject"
)

// TestShutdownUnderLoad cancels the daemon while a stream is gated between
// its first and second rows. The drain window (100ms) expires, the daemon
// force-closes the connection, reports the expiry on stderr, and exits 1 —
// it never hangs on the stuck sweep.
func TestShutdownUnderLoad(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	gate := make(chan struct{})
	defer close(gate)
	hits := 0
	faultinject.Set(faultinject.StreamEmit, func() error {
		hits++
		if hits == 2 {
			<-gate
		}
		return nil
	})

	csv := "A,B,C,D\n1,1,1,1\n1,2,1,3\n2,2,1,1\n2,3,4,3\n"
	var stdout, stderr safeBuilder
	base, stop := bootDaemon(t, &stdout, &stderr, "-drain", "100ms")
	body := `{"name":"paper","csv":` + quoteCSV(csv) + `}`
	resp, err := http.Post(base+"/v1/datasets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d, want 201", resp.StatusCode)
	}

	stream, err := http.Post(base+"/v1/repair", "application/json",
		strings.NewReader(`{"dataset":"paper","fds":"A->B; C->D"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatal("no first row before the gate")
	}

	exitc := make(chan int, 1)
	go func() { exitc <- stop() }()
	select {
	case code := <-exitc:
		if code != 1 {
			t.Errorf("exit code = %d, want 1 after drain expiry", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon hung on a stuck sweep during shutdown")
	}
	if msg := stderr.String(); !strings.Contains(msg, "drain window expired") {
		t.Errorf("stderr %q, want drain-expiry report", msg)
	}
}

// quoteCSV JSON-escapes the CSV payload (newlines only; the fixture has no
// quotes or backslashes).
func quoteCSV(csv string) string {
	return `"` + strings.ReplaceAll(csv, "\n", `\n`) + `"`
}
