package main

// Smoke tests for the daemon's run() plumbing: flag errors, preload
// failures, and a full start → serve → graceful-shutdown cycle against a
// real socket.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlagErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(context.Background(), []string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: code %d", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-dataset", "missing-equals"}, &stdout, &stderr); code != 2 ||
		!strings.Contains(stderr.String(), "name=path.csv") {
		t.Errorf("malformed -dataset: code %d, stderr %q", code, stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-h"}, &stdout, &stderr); code != 0 ||
		!strings.Contains(stderr.String(), "-addr") {
		t.Errorf("-h: code %d, stderr %q", code, stderr.String())
	}
}

func TestPreloadErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run(context.Background(),
		[]string{"-addr", "127.0.0.1:0", "-dataset", "x=" + filepath.Join(t.TempDir(), "missing.csv")},
		&stdout, &stderr)
	if code != 1 || stderr.Len() == 0 {
		t.Errorf("missing preload file: code %d, stderr %q", code, stderr.String())
	}
}

// TestServeAndShutdown boots the daemon with a preloaded dataset on an
// ephemeral port, streams one frontier over the socket, and shuts it down
// via context cancellation (the SIGINT path).
func TestServeAndShutdown(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "paper.csv")
	if err := os.WriteFile(csvPath, []byte("A,B,C,D\n1,1,1,1\n1,2,1,3\n2,2,1,1\n2,3,4,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Reserve a port, free it, and hand it to the daemon: ephemeral but
	// known ahead of ListenAndServe.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr safeBuilder
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", addr, "-dataset", "paper=" + csvPath}, &stdout, &stderr)
	}()

	// Wait for the listener, then stream a frontier.
	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up; stderr %q", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	body, err := json.Marshal(map[string]any{"dataset": "paper", "fds": "A->B; C->D"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			t.Fatalf("stream error: %s", sc.Text())
		}
		rows++
	}
	resp.Body.Close()
	if rows < 2 {
		t.Errorf("streamed %d rows", rows)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("shutdown exit code %d, stderr %q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if out := stdout.String(); !strings.Contains(out, "preloaded dataset \"paper\"") ||
		!strings.Contains(out, "shut down") {
		t.Errorf("stdout %q", out)
	}
}

// bootDaemon starts run() on a fresh ephemeral port and waits for the
// listener. It returns the base URL and a stop function that cancels the
// daemon's context and reports the exit code (or -1 on a hung shutdown).
func bootDaemon(t *testing.T, stdout, stderr *safeBuilder, extraArgs ...string) (base string, stop func() int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", addr}, extraArgs...), stdout, stderr)
	}()
	t.Cleanup(cancel)

	base = "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err == nil {
			break
		}
		select {
		case code := <-done:
			t.Fatalf("daemon exited early with code %d; stderr %q", code, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up; stderr %q", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return base, func() int {
		cancel()
		select {
		case code := <-done:
			return code
		case <-time.After(15 * time.Second):
			return -1
		}
	}
}

// streamRows posts a frontier request and returns the raw frame lines,
// failing the test on any in-band error frame.
func streamRows(t *testing.T, base string) []string {
	t.Helper()
	body, err := json.Marshal(map[string]any{"dataset": "paper", "fds": "A->B; C->D"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var rows []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			t.Fatalf("stream error: %s", sc.Text())
		}
		rows = append(rows, sc.Text())
	}
	return rows
}

// TestRestartRecovery is the durability e2e at the daemon level: register a
// dataset over HTTP against a -data-dir daemon, stop the process, boot a
// fresh one on the same directory, and assert the rehydrated dataset serves
// a byte-identical repair frontier — with a colliding -dataset preload
// skipped in favour of the persisted copy.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(t.TempDir(), "paper.csv")
	csv := "A,B,C,D\n1,1,1,1\n1,2,1,3\n2,2,1,1\n2,3,4,3\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}

	var out1, err1 safeBuilder
	base1, stop1 := bootDaemon(t, &out1, &err1, "-data-dir", dir)
	body, err := json.Marshal(map[string]any{"name": "paper", "csv": csv})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base1+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d, want 201", resp.StatusCode)
	}
	want := streamRows(t, base1)
	if len(want) < 2 {
		t.Fatalf("first daemon streamed %d rows", len(want))
	}
	if code := stop1(); code != 0 {
		t.Fatalf("first daemon exit code %d, stderr %q", code, err1.String())
	}

	var out2, err2 safeBuilder
	base2, stop2 := bootDaemon(t, &out2, &err2,
		"-data-dir", dir, "-dataset", "paper="+csvPath)
	got := streamRows(t, base2)
	if len(got) != len(want) {
		t.Fatalf("recovered frontier has %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d differs after restart:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	if code := stop2(); code != 0 {
		t.Fatalf("second daemon exit code %d, stderr %q", code, err2.String())
	}
	if out := out2.String(); !strings.Contains(out, "rehydrated 1 dataset(s)") ||
		!strings.Contains(out, `dataset "paper" already persisted; skipping preload`) {
		t.Errorf("second boot stdout %q", out)
	}
}

// safeBuilder is a strings.Builder safe for the cross-goroutine use above.
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
