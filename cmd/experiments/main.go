// Command experiments regenerates the paper's evaluation figures (Section
// 8) as printed tables and series.
//
// Usage:
//
//	experiments -fig 7           # one figure
//	experiments -fig all -scale 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relatrust/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: 7..13 or \"all\"")
		scale = flag.Float64("scale", 1, "tuple-count multiplier (paper sizes ≈ 4-10)")
		seed  = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()
	cfg := experiments.Config{Scale: *scale, Seed: *seed}

	run := func(name string, f func() (string, error)) {
		fmt.Printf("=== %s ===\n", name)
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	want := func(n string) bool { return *fig == "all" || *fig == n }

	if want("7") {
		run("Figure 7: repair quality vs relative trust", func() (string, error) {
			p, err := experiments.Figure7(cfg)
			return experiments.FormatFigure7(p), err
		})
	}
	if want("8") {
		run("Figure 8: best quality, uniform-cost vs relative-trust", func() (string, error) {
			p, err := experiments.Figure8(cfg)
			return experiments.FormatFigure8(p), err
		})
	}
	if want("9") {
		run("Figure 9: scalability with the number of tuples", func() (string, error) {
			p, err := experiments.Figure9(cfg)
			return experiments.FormatPerf(p, "tuples"), err
		})
	}
	if want("10") {
		run("Figure 10: scalability with the number of attributes", func() (string, error) {
			p, err := experiments.Figure10(cfg)
			return experiments.FormatPerf(p, "attrs"), err
		})
	}
	if want("11") {
		run("Figure 11: scalability with the number of FDs", func() (string, error) {
			p, err := experiments.Figure11(cfg)
			return experiments.FormatPerf(p, "FDs"), err
		})
	}
	if want("12") {
		run("Figure 12: effect of the relative trust parameter", func() (string, error) {
			p, err := experiments.Figure12(cfg)
			return experiments.FormatFigure12(p), err
		})
	}
	if want("13") {
		run("Figure 13: generating multiple repairs", func() (string, error) {
			p, err := experiments.Figure13(cfg)
			return experiments.FormatFigure13(p), err
		})
	}
	if !strings.Contains("7 8 9 10 11 12 13 all", *fig) {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
