package main

// Tests for the CLI flag plumbing through the testable run() entry point:
// exit codes, stdout/stderr content, and the search knobs (workers,
// best-first, no-cover-cache, progress) actually reaching the facade.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relatrust"
)

const citiesCSV = `City,ZIP,State
Springfield,62701,IL
Springfield,62701,IL
Springfield,97477,OR
Shelbyville,46176,IN
Shelbyville,46176,TN
`

const citiesFDs = "City->ZIP; City->State"

// writeFixture drops the fixture CSV into a temp dir and returns its path.
func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cities.csv")
	if err := os.WriteFile(path, []byte(citiesCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI invokes run() and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runCLI(t); code != 2 || !strings.Contains(stderr, "-data and -fds are required") {
		t.Errorf("no args: code %d, stderr %q", code, stderr)
	}
	if code, _, _ := runCLI(t, "-data", "x.csv"); code != 2 {
		t.Errorf("missing -fds: code %d", code)
	}
	if code, _, stderr := runCLI(t, "-nope"); code != 2 || !strings.Contains(stderr, "flag provided but not defined") {
		t.Errorf("unknown flag: code %d, stderr %q", code, stderr)
	}
	// Asking for help is a success, not a usage error.
	if code, _, stderr := runCLI(t, "-h"); code != 0 || !strings.Contains(stderr, "-data") {
		t.Errorf("-h: code %d, stderr %q", code, stderr)
	}
}

func TestRuntimeErrors(t *testing.T) {
	data := writeFixture(t)
	if code, _, stderr := runCLI(t, "-data", filepath.Join(t.TempDir(), "missing.csv"), "-fds", citiesFDs); code != 1 || stderr == "" {
		t.Errorf("missing file: code %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-data", data, "-fds", citiesFDs, "-weights", "nope"); code != 1 ||
		!strings.Contains(stderr, "unknown weighting") {
		t.Errorf("bad weighting: code %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-data", data, "-fds", "Nope->ZIP"); code != 1 || stderr == "" {
		t.Errorf("bad FD: code %d, stderr %q", code, stderr)
	}
}

func TestSweepOutput(t *testing.T) {
	data := writeFixture(t)
	code, stdout, stderr := runCLI(t, "-data", data, "-fds", citiesFDs, "-seed", "1")
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "5 tuples × 3 attributes") {
		t.Errorf("missing shape banner:\n%s", stdout)
	}
	if !strings.Contains(stdout, "δP(Σ, I) =") {
		t.Errorf("missing δP line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "FD modification") {
		t.Errorf("missing spectrum header:\n%s", stdout)
	}
	// The frontier has at least the pure-data and one relaxation level.
	rows := 0
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "1 ") || strings.HasPrefix(line, "2 ") {
			rows++
		}
	}
	if rows < 2 {
		t.Errorf("fewer than 2 frontier rows:\n%s", stdout)
	}
}

// TestSearchKnobs: every engine knob must plumb through to the facade and
// leave the printed spectrum identical — the parallel engine, best-first
// search, and the disabled partition cache are all pinned to produce the
// same frontier on this fixture.
func TestSearchKnobs(t *testing.T) {
	data := writeFixture(t)
	base := []string{"-data", data, "-fds", citiesFDs, "-seed", "1"}
	_, want, _ := runCLI(t, base...)
	variants := [][]string{
		{"-workers", "1"},
		{"-workers", "4"},
		{"-workers", "4", "-no-cover-cache"},
		{"-best-first"},
	}
	for _, extra := range variants {
		code, got, stderr := runCLI(t, append(append([]string{}, base...), extra...)...)
		if code != 0 {
			t.Errorf("%v: code %d, stderr %q", extra, code, stderr)
			continue
		}
		if got != want {
			t.Errorf("%v changed the printed spectrum:\n%s\nvs default:\n%s", extra, got, want)
		}
	}
}

func TestProgressFlag(t *testing.T) {
	data := writeFixture(t)
	code, _, stderr := runCLI(t, "-data", data, "-fds", citiesFDs, "-progress")
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"progress: sweep started", "progress: τ=", "progress: sweep finished"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr lacks %q:\n%s", want, stderr)
		}
	}
	// Without the flag, stderr stays silent.
	if code, _, stderr := runCLI(t, "-data", data, "-fds", citiesFDs); code != 0 || stderr != "" {
		t.Errorf("no -progress: code %d, stderr %q", code, stderr)
	}
}

func TestSingleTauAndInfeasible(t *testing.T) {
	data := writeFixture(t)
	code, stdout, _ := runCLI(t, "-data", data, "-fds", citiesFDs, "-tau", "100")
	if code != 0 || !strings.Contains(stdout, "FD modification") {
		t.Errorf("tau=100: code %d\n%s", code, stdout)
	}

	// An unextendable two-attribute schema at τ=0 has no repair; the CLI
	// reports it as a message, not a failure.
	two := filepath.Join(t.TempDir(), "two.csv")
	if err := os.WriteFile(two, []byte("City,ZIP\nA,1\nA,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, "-data", two, "-fds", "City->ZIP", "-tau", "0")
	if code != 0 || !strings.Contains(stdout, "no FD relaxation fits τ=0") {
		t.Errorf("infeasible τ: code %d\n%s", code, stdout)
	}
}

func TestShowCellsAndOutputCSV(t *testing.T) {
	data := writeFixture(t)
	out := filepath.Join(t.TempDir(), "repaired.csv")
	code, stdout, stderr := runCLI(t, "-data", data, "-fds", citiesFDs, "-seed", "1",
		"-show-cells", "-o", out)
	if code != 0 {
		t.Fatalf("code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "changes of repair 1:") || !strings.Contains(stdout, "→") {
		t.Errorf("missing cell listing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "wrote repaired data") {
		t.Errorf("missing -o confirmation:\n%s", stdout)
	}
	// The written CSV re-reads with the fixture's shape and satisfies the
	// last repair's relaxed FDs trivially (it is grounded).
	repaired, err := relatrust.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.N() != 5 || repaired.Schema.Width() != 3 {
		t.Errorf("repaired CSV shape %dx%d", repaired.N(), repaired.Schema.Width())
	}
}

func TestSatisfiedInstance(t *testing.T) {
	clean := filepath.Join(t.TempDir(), "clean.csv")
	if err := os.WriteFile(clean, []byte("A,B\n1,1\n2,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runCLI(t, "-data", clean, "-fds", "A->B")
	if code != 0 || !strings.Contains(stdout, "already satisfies every FD") {
		t.Errorf("satisfied: code %d\n%s", code, stdout)
	}
}

func TestFDsFromFile(t *testing.T) {
	data := writeFixture(t)
	fdFile := filepath.Join(t.TempDir(), "fds.txt")
	if err := os.WriteFile(fdFile, []byte(citiesFDs+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-data", data, "-fds", "@"+fdFile)
	if code != 0 || !strings.Contains(stdout, "FD modification") {
		t.Errorf("@file FDs: code %d, stderr %q\n%s", code, stderr, stdout)
	}
}

func TestCancelledContext(t *testing.T) {
	data := writeFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr strings.Builder
	code := run(ctx, []string{"-data", data, "-fds", citiesFDs}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("pre-cancelled run: code %d, stdout %q stderr %q", code, stdout.String(), stderr.String())
	}
}
