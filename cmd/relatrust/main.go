// Command relatrust repairs a CSV data set against a set of functional
// dependencies, suggesting modifications of the data and/or the FDs across
// the relative-trust spectrum.
//
// Usage:
//
//	relatrust -data people.csv -fds "Surname,GivenName->Income" [flags]
//
// With -tau N it prints the single repair for that cell-change budget
// (Algorithm 1 of the paper); without it, the full Pareto frontier of
// suggested repairs (Algorithm 6).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relatrust"

	"relatrust/internal/cfd"
	"relatrust/internal/report"
	"relatrust/internal/weights"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relatrust:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataPath  = flag.String("data", "", "CSV file (header row defines the schema)")
		fdSpec    = flag.String("fds", "", "FDs, e.g. \"A,B->C; D->E\" (or @file to read them from a file)")
		tau       = flag.Int("tau", -1, "cell-change budget; -1 sweeps the whole trust spectrum")
		weighting = flag.String("weights", "distinct-count", "FD-modification weighting: attr-count | distinct-count | entropy")
		bestFirst = flag.Bool("best-first", false, "use best-first search instead of A*")
		workers   = flag.Int("workers", 0, "parallel evaluation workers for the FD search (0 = GOMAXPROCS, 1 = sequential)")
		noCache   = flag.Bool("no-cover-cache", false, "disable the parallel search engine's per-worker partition cache (results are identical either way)")
		seed      = flag.Int64("seed", 1, "seed for the randomized data-repair order")
		outPath   = flag.String("o", "", "write the repaired data of the last printed repair to this CSV file")
		showData  = flag.Bool("show-cells", false, "list every changed cell per repair")
		maxShown  = flag.Int("max-cells", 20, "changed cells to list per repair with -show-cells")
	)
	flag.Parse()
	if *dataPath == "" || *fdSpec == "" {
		flag.Usage()
		return fmt.Errorf("-data and -fds are required")
	}

	in, err := relatrust.ReadCSVFile(*dataPath)
	if err != nil {
		return err
	}
	spec := *fdSpec
	if strings.HasPrefix(spec, "@") {
		raw, err := os.ReadFile(spec[1:])
		if err != nil {
			return err
		}
		spec = string(raw)
	}
	w, err := weights.ByName(*weighting, in)
	if err != nil {
		return err
	}
	if strings.Contains(spec, "|") {
		// Conditional FDs take the CFD engine (single-τ only).
		return runCFD(in, spec, *tau, w, *seed)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, spec)
	if err != nil {
		return err
	}
	// One session serves every facade call of this run (the satisfaction
	// check, MaxBudget, and the repair itself analyze the same instance).
	opt := relatrust.Options{
		Weights:          w,
		BestFirst:        *bestFirst,
		Seed:             *seed,
		Workers:          *workers,
		Session:          relatrust.NewSession(in),
		NoPartitionCache: *noCache,
	}

	fmt.Printf("%d tuples × %d attributes, Σ = %s\n", in.N(), in.Schema.Width(), sigma.Format(in.Schema))
	if relatrust.Satisfies(in, sigma) {
		fmt.Println("the data already satisfies every FD; nothing to repair")
		return nil
	}
	dp, err := relatrust.MaxBudget(in, sigma, opt)
	if err != nil {
		return err
	}
	fmt.Printf("δP(Σ, I) = %d (cell-change budget for a pure data repair)\n\n", dp)

	var repairs []*relatrust.Repair
	if *tau >= 0 {
		r, err := relatrust.RepairWithBudget(in, sigma, *tau, opt)
		if err != nil {
			return err
		}
		if r == nil {
			fmt.Printf("no FD relaxation fits τ=%d; raise the budget\n", *tau)
			return nil
		}
		repairs = []*relatrust.Repair{r}
	} else {
		repairs, err = relatrust.SuggestRepairs(in, sigma, opt)
		if err != nil {
			return err
		}
	}

	if err := report.Spectrum(os.Stdout, in, repairs); err != nil {
		return err
	}
	if *showData {
		for i, r := range repairs {
			fmt.Printf("\nchanges of repair %d:\n", i+1)
			if err := report.Changes(os.Stdout, in, r, report.Options{MaxCells: *maxShown}); err != nil {
				return err
			}
		}
	}

	if *outPath != "" && len(repairs) > 0 {
		last := repairs[len(repairs)-1]
		ground := last.Data.Instance.Ground("repaired_")
		if err := writeCSV(*outPath, ground); err != nil {
			return err
		}
		fmt.Printf("wrote repaired data of repair %d to %s\n", len(repairs), *outPath)
	}
	return nil
}

// runCFD repairs against conditional FDs (pattern syntax "A,B->C | a,_").
func runCFD(in *relatrust.Instance, spec string, tau int, w weights.Func, seed int64) error {
	set, err := cfd.ParseSet(in.Schema, spec)
	if err != nil {
		return err
	}
	fmt.Printf("%d tuples, CFDs = %s\n", in.N(), set.Format(in.Schema))
	if set.SatisfiedBy(in) {
		fmt.Println("the data already satisfies every CFD")
		return nil
	}
	if tau < 0 {
		return fmt.Errorf("CFD mode needs an explicit -tau budget")
	}
	r, err := cfd.RepairWithBudget(in, set, tau, cfd.Config{Weights: w, Seed: seed})
	if err != nil {
		return err
	}
	if r == nil {
		fmt.Printf("no CFD relaxation fits τ=%d; raise the budget\n", tau)
		return nil
	}
	fmt.Printf("Σ' = %s\n", r.Set.Format(in.Schema))
	fmt.Printf("cell changes: %d\n", r.NumChanges())
	for _, c := range r.Changed {
		fmt.Printf("  %s: %s → %s\n", c.Format(in.Schema),
			in.Tuples[c.Tuple][c.Attr], r.Instance.Tuples[c.Tuple][c.Attr])
	}
	return nil
}

func writeCSV(path string, in *relatrust.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := relatrust.WriteCSV(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
