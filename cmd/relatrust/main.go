// Command relatrust repairs a CSV data set against a set of functional
// dependencies, suggesting modifications of the data and/or the FDs across
// the relative-trust spectrum.
//
// Usage:
//
//	relatrust -data people.csv -fds "Surname,GivenName->Income" [flags]
//
// With -tau N it prints the single repair for that cell-change budget
// (Algorithm 1 of the paper); without it, the full Pareto frontier of
// suggested repairs (Algorithm 6), each row printed as its trust level
// finishes. Ctrl-C cancels a running sweep cleanly: the partial frontier
// stays printed and the process exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"relatrust"

	"relatrust/internal/cfd"
	"relatrust/internal/report"
	"relatrust/internal/weights"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "relatrust:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		dataPath  = flag.String("data", "", "CSV file (header row defines the schema)")
		fdSpec    = flag.String("fds", "", "FDs, e.g. \"A,B->C; D->E\" (or @file to read them from a file)")
		tau       = flag.Int("tau", -1, "cell-change budget; -1 sweeps the whole trust spectrum")
		weighting = flag.String("weights", "distinct-count", "FD-modification weighting: attr-count | distinct-count | entropy")
		bestFirst = flag.Bool("best-first", false, "use best-first search instead of A*")
		workers   = flag.Int("workers", 0, "parallel evaluation workers for the FD search (0 = GOMAXPROCS, 1 = sequential)")
		noCache   = flag.Bool("no-cover-cache", false, "disable the parallel search engine's per-worker partition cache (results are identical either way)")
		seed      = flag.Int64("seed", 1, "seed for the randomized data-repair order")
		outPath   = flag.String("o", "", "write the repaired data of the last printed repair to this CSV file")
		showData  = flag.Bool("show-cells", false, "list every changed cell per repair")
		maxShown  = flag.Int("max-cells", 20, "changed cells to list per repair with -show-cells")
		progress  = flag.Bool("progress", false, "report sweep progress (τ levels, states visited, cache hit rate) on stderr")
	)
	flag.Parse()
	if *dataPath == "" || *fdSpec == "" {
		flag.Usage()
		return fmt.Errorf("-data and -fds are required")
	}

	in, err := relatrust.ReadCSVFile(*dataPath)
	if err != nil {
		return err
	}
	spec := *fdSpec
	if strings.HasPrefix(spec, "@") {
		raw, err := os.ReadFile(spec[1:])
		if err != nil {
			return err
		}
		spec = string(raw)
	}
	w, err := weights.ByName(*weighting, in)
	if err != nil {
		return err
	}
	if strings.Contains(spec, "|") {
		// Conditional FDs take the CFD engine (single-τ only).
		return runCFD(ctx, in, spec, *tau, w, *seed)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, spec)
	if err != nil {
		return err
	}
	opt := relatrust.Options{
		Weights:          w,
		BestFirst:        *bestFirst,
		Seed:             *seed,
		Workers:          *workers,
		NoPartitionCache: *noCache,
	}
	if *progress {
		opt.Progress = reportProgress
	}

	fmt.Printf("%d tuples × %d attributes, Σ = %s\n", in.N(), in.Schema.Width(), sigma.Format(in.Schema))
	if relatrust.Satisfies(in, sigma) {
		fmt.Println("the data already satisfies every FD; nothing to repair")
		return nil
	}
	// The Repairer validates once and owns the warm session engine: the
	// MaxBudget call below and the repair sweep share one analysis.
	rp, err := relatrust.NewRepairer(in, sigma, opt)
	if err != nil {
		return err
	}
	dp, err := rp.MaxBudget(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("δP(Σ, I) = %d (cell-change budget for a pure data repair)\n\n", dp)

	var repairs []*relatrust.Repair
	if *tau >= 0 {
		r, err := rp.RepairWithBudget(ctx, *tau)
		if errors.Is(err, relatrust.ErrNoRepairInBudget) {
			fmt.Printf("no FD relaxation fits τ=%d; raise the budget\n", *tau)
			return nil
		}
		if err != nil {
			return err
		}
		repairs = []*relatrust.Repair{r}
		if err := report.Spectrum(os.Stdout, in, repairs); err != nil {
			return err
		}
	} else {
		// Stream the frontier: each row appears the moment its trust level
		// finishes, so slow sweeps show progress and a Ctrl-C keeps the
		// partial spectrum.
		sw := report.NewSpectrumWriter(os.Stdout)
		for r, err := range rp.Frontier(ctx) {
			if err != nil {
				if errors.Is(err, context.Canceled) {
					fmt.Printf("\nsweep cancelled after %d of the frontier's repairs\n", sw.Rows())
				}
				return err
			}
			if err := sw.Row(in, r); err != nil {
				return err
			}
			repairs = append(repairs, r)
		}
	}

	if *showData {
		for i, r := range repairs {
			fmt.Printf("\nchanges of repair %d:\n", i+1)
			if err := report.Changes(os.Stdout, in, r, report.Options{MaxCells: *maxShown}); err != nil {
				return err
			}
		}
	}

	if *outPath != "" && len(repairs) > 0 {
		last := repairs[len(repairs)-1]
		ground := last.Data.Instance.Ground("repaired_")
		if err := writeCSV(*outPath, ground); err != nil {
			return err
		}
		fmt.Printf("wrote repaired data of repair %d to %s\n", len(repairs), *outPath)
	}
	return nil
}

// reportProgress renders Options.Progress events on stderr.
func reportProgress(ev relatrust.ProgressEvent) {
	switch ev.Kind {
	case relatrust.ProgressSweepStarted:
		fmt.Fprintf(os.Stderr, "progress: sweep started, τ=%d\n", ev.Tau)
	case relatrust.ProgressTauFinished:
		fmt.Fprintf(os.Stderr, "progress: τ=%d finished (%d states visited)\n", ev.Tau, ev.Visited)
	case relatrust.ProgressTauStarted:
		fmt.Fprintf(os.Stderr, "progress: continuing under τ=%d\n", ev.Tau)
	case relatrust.ProgressSweepFinished:
		fmt.Fprintf(os.Stderr, "progress: sweep finished (%d states visited, cover-cache hit rate %.0f%%)\n",
			ev.Visited, 100*ev.CacheHitRate)
	}
}

// runCFD repairs against conditional FDs (pattern syntax "A,B->C | a,_").
func runCFD(ctx context.Context, in *relatrust.Instance, spec string, tau int, w weights.Func, seed int64) error {
	set, err := cfd.ParseSet(in.Schema, spec)
	if err != nil {
		return err
	}
	fmt.Printf("%d tuples, CFDs = %s\n", in.N(), set.Format(in.Schema))
	if set.SatisfiedBy(in) {
		fmt.Println("the data already satisfies every CFD")
		return nil
	}
	if tau < 0 {
		return fmt.Errorf("CFD mode needs an explicit -tau budget")
	}
	r, err := cfd.RepairWithBudget(ctx, in, set, tau, cfd.Config{Weights: w, Seed: seed})
	if err != nil {
		return err
	}
	if r == nil {
		fmt.Printf("no CFD relaxation fits τ=%d; raise the budget\n", tau)
		return nil
	}
	fmt.Printf("Σ' = %s\n", r.Set.Format(in.Schema))
	fmt.Printf("cell changes: %d\n", r.NumChanges())
	for _, c := range r.Changed {
		fmt.Printf("  %s: %s → %s\n", c.Format(in.Schema),
			in.Tuples[c.Tuple][c.Attr], r.Instance.Tuples[c.Tuple][c.Attr])
	}
	return nil
}

func writeCSV(path string, in *relatrust.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := relatrust.WriteCSV(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
