// Command relatrust repairs a CSV data set against a set of functional
// dependencies, suggesting modifications of the data and/or the FDs across
// the relative-trust spectrum.
//
// Usage:
//
//	relatrust -data people.csv -fds "Surname,GivenName->Income" [flags]
//
// With -tau N it prints the single repair for that cell-change budget
// (Algorithm 1 of the paper); without it, the full Pareto frontier of
// suggested repairs (Algorithm 6), each row printed as its trust level
// finishes. Ctrl-C cancels a running sweep cleanly: the partial frontier
// stays printed and the process exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"relatrust"

	"relatrust/internal/cfd"
	"relatrust/internal/report"
	"relatrust/internal/weights"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, executes, and
// returns the process exit code (0 success, 1 runtime failure, 2 usage).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("relatrust", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataPath  = fs.String("data", "", "CSV file (header row defines the schema)")
		fdSpec    = fs.String("fds", "", "FDs, e.g. \"A,B->C; D->E\" (or @file to read them from a file)")
		tau       = fs.Int("tau", -1, "cell-change budget; -1 sweeps the whole trust spectrum")
		weighting = fs.String("weights", "distinct-count", "FD-modification weighting: attr-count | distinct-count | entropy")
		bestFirst = fs.Bool("best-first", false, "use best-first search instead of A*")
		workers   = fs.Int("workers", 0, "parallel evaluation workers for the FD search (0 = GOMAXPROCS, 1 = sequential)")
		noCache   = fs.Bool("no-cover-cache", false, "disable the parallel search engine's per-worker partition cache (results are identical either way)")
		noDecomp  = fs.Bool("no-decomposition", false, "disable conflict-hypergraph decomposition: run every cover query monolithically (results are identical either way)")
		seed      = fs.Int64("seed", 1, "seed for the randomized data-repair order")
		outPath   = fs.String("o", "", "write the repaired data of the last printed repair to this CSV file")
		showData  = fs.Bool("show-cells", false, "list every changed cell per repair")
		maxShown  = fs.Int("max-cells", 20, "changed cells to list per repair with -show-cells")
		progress  = fs.Bool("progress", false, "report sweep progress (τ levels, states visited, cache hit rate) on stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *dataPath == "" || *fdSpec == "" {
		fs.Usage()
		fmt.Fprintln(stderr, "relatrust: -data and -fds are required")
		return 2
	}
	cfg := cliConfig{
		dataPath:  *dataPath,
		fdSpec:    *fdSpec,
		tau:       *tau,
		weighting: *weighting,
		bestFirst: *bestFirst,
		workers:   *workers,
		noCache:   *noCache,
		noDecomp:  *noDecomp,
		seed:      *seed,
		outPath:   *outPath,
		showData:  *showData,
		maxShown:  *maxShown,
		progress:  *progress,
	}
	if err := repairMain(ctx, cfg, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "relatrust:", err)
		return 1
	}
	return 0
}

// cliConfig carries the parsed flags.
type cliConfig struct {
	dataPath, fdSpec, weighting, outPath string
	tau, workers, maxShown               int
	seed                                 int64
	bestFirst, noCache, noDecomp         bool
	showData, progress                   bool
}

func repairMain(ctx context.Context, cli cliConfig, stdout, stderr io.Writer) error {
	in, err := relatrust.ReadCSVFile(cli.dataPath)
	if err != nil {
		return err
	}
	spec := cli.fdSpec
	if strings.HasPrefix(spec, "@") {
		raw, err := os.ReadFile(spec[1:])
		if err != nil {
			return err
		}
		spec = string(raw)
	}
	w, err := weights.ByName(cli.weighting, in)
	if err != nil {
		return err
	}
	if strings.Contains(spec, "|") {
		// Conditional FDs take the CFD engine (single-τ only).
		return runCFD(ctx, in, spec, cli.tau, w, cli.seed, stdout)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, spec)
	if err != nil {
		return err
	}
	opt := relatrust.Options{
		Weights:          w,
		BestFirst:        cli.bestFirst,
		Seed:             cli.seed,
		Workers:          cli.workers,
		NoPartitionCache: cli.noCache,
		NoDecomposition:  cli.noDecomp,
	}
	if cli.progress {
		opt.Progress = progressReporter(stderr)
	}

	fmt.Fprintf(stdout, "%d tuples × %d attributes, Σ = %s\n", in.N(), in.Schema.Width(), sigma.Format(in.Schema))
	if relatrust.Satisfies(in, sigma) {
		fmt.Fprintln(stdout, "the data already satisfies every FD; nothing to repair")
		return nil
	}
	// The Repairer validates once and owns the warm session engine: the
	// MaxBudget call below and the repair sweep share one analysis.
	rp, err := relatrust.NewRepairer(in, sigma, opt)
	if err != nil {
		return err
	}
	dp, err := rp.MaxBudget(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "δP(Σ, I) = %d (cell-change budget for a pure data repair)\n\n", dp)

	var repairs []*relatrust.Repair
	if cli.tau >= 0 {
		r, err := rp.RepairWithBudget(ctx, cli.tau)
		if errors.Is(err, relatrust.ErrNoRepairInBudget) {
			fmt.Fprintf(stdout, "no FD relaxation fits τ=%d; raise the budget\n", cli.tau)
			return nil
		}
		if err != nil {
			return err
		}
		repairs = []*relatrust.Repair{r}
		if err := report.Spectrum(stdout, in, repairs); err != nil {
			return err
		}
	} else {
		// Stream the frontier: each row appears the moment its trust level
		// finishes, so slow sweeps show progress and a Ctrl-C keeps the
		// partial spectrum.
		sw := report.NewSpectrumWriter(stdout)
		for r, err := range rp.Frontier(ctx) {
			if err != nil {
				if errors.Is(err, context.Canceled) {
					fmt.Fprintf(stdout, "\nsweep cancelled after %d of the frontier's repairs\n", sw.Rows())
				}
				return err
			}
			if err := sw.Row(in, r); err != nil {
				return err
			}
			repairs = append(repairs, r)
		}
	}

	if cli.showData {
		for i, r := range repairs {
			fmt.Fprintf(stdout, "\nchanges of repair %d:\n", i+1)
			if err := report.Changes(stdout, in, r, report.Options{MaxCells: cli.maxShown}); err != nil {
				return err
			}
		}
	}

	if cli.outPath != "" && len(repairs) > 0 {
		last := repairs[len(repairs)-1]
		ground := last.Data.Instance.Ground("repaired_")
		if err := writeCSV(cli.outPath, ground); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote repaired data of repair %d to %s\n", len(repairs), cli.outPath)
	}
	return nil
}

// progressReporter renders Options.Progress events on w.
func progressReporter(w io.Writer) func(relatrust.ProgressEvent) {
	return func(ev relatrust.ProgressEvent) {
		// Sweeps over a live dataset answer for one pinned mutation
		// generation; name it so interleaved logs stay attributable.
		gen := ""
		if ev.Generation != 0 {
			gen = fmt.Sprintf(" [gen %d]", ev.Generation)
		}
		switch ev.Kind {
		case relatrust.ProgressSweepStarted:
			fmt.Fprintf(w, "progress: sweep started, τ=%d%s\n", ev.Tau, gen)
		case relatrust.ProgressTauFinished:
			fmt.Fprintf(w, "progress: τ=%d finished (%d states visited)\n", ev.Tau, ev.Visited)
		case relatrust.ProgressTauStarted:
			fmt.Fprintf(w, "progress: continuing under τ=%d\n", ev.Tau)
		case relatrust.ProgressSweepFinished:
			fmt.Fprintf(w, "progress: sweep finished (%d states visited, cover-cache hit rate %.0f%%, %d conflict components, largest %d tuples)\n",
				ev.Visited, 100*ev.CacheHitRate, ev.Components, ev.LargestComponent)
		}
	}
}

// runCFD repairs against conditional FDs (pattern syntax "A,B->C | a,_").
func runCFD(ctx context.Context, in *relatrust.Instance, spec string, tau int, w weights.Func, seed int64, stdout io.Writer) error {
	set, err := cfd.ParseSet(in.Schema, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d tuples, CFDs = %s\n", in.N(), set.Format(in.Schema))
	if set.SatisfiedBy(in) {
		fmt.Fprintln(stdout, "the data already satisfies every CFD")
		return nil
	}
	if tau < 0 {
		return fmt.Errorf("CFD mode needs an explicit -tau budget")
	}
	r, err := cfd.RepairWithBudget(ctx, in, set, tau, cfd.Config{Weights: w, Seed: seed})
	if err != nil {
		return err
	}
	if r == nil {
		fmt.Fprintf(stdout, "no CFD relaxation fits τ=%d; raise the budget\n", tau)
		return nil
	}
	fmt.Fprintf(stdout, "Σ' = %s\n", r.Set.Format(in.Schema))
	fmt.Fprintf(stdout, "cell changes: %d\n", r.NumChanges())
	for _, c := range r.Changed {
		fmt.Fprintf(stdout, "  %s: %s → %s\n", c.Format(in.Schema),
			in.Tuples[c.Tuple][c.Attr], r.Instance.Tuples[c.Tuple][c.Attr])
	}
	return nil
}

func writeCSV(path string, in *relatrust.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := relatrust.WriteCSV(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
