// Command discover mines functional dependencies from a CSV file, exactly
// or approximately — the workflow the paper's Section 1 motivates ("FDs
// that were automatically discovered from legacy data may be less
// reliable"), and the setup step of its experiments.
//
// Usage:
//
//	discover -data people.csv -max-lhs 2
//	discover -data people.csv -max-lhs 2 -max-error 0.05
//	discover -data people.csv -attrs Surname,GivenName,Income
package main

import (
	"flag"
	"fmt"
	"os"

	"relatrust/internal/discovery"
	"relatrust/internal/relation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "discover:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataPath = flag.String("data", "", "CSV file (header row defines the schema)")
		maxLHS   = flag.Int("max-lhs", 2, "largest LHS size to explore")
		maxErr   = flag.Float64("max-error", 0, "tolerated fraction of violating tuples (0 = exact FDs)")
		attrs    = flag.String("attrs", "", "comma-separated attribute subset to mine (default: all)")
		maxOut   = flag.Int("max", 0, "stop after this many FDs (0 = unlimited; exact mode only)")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		return fmt.Errorf("-data is required")
	}
	in, err := relation.ReadCSVFile(*dataPath)
	if err != nil {
		return err
	}
	var restrict relation.AttrSet
	if *attrs != "" {
		restrict, err = in.Schema.ParseAttrs(*attrs)
		if err != nil {
			return err
		}
	}
	fmt.Printf("%d tuples × %d attributes\n", in.N(), in.Schema.Width())

	if *maxErr > 0 {
		found := discovery.DiscoverApprox(in, discovery.ApproxOptions{
			MaxError: *maxErr,
			MaxLHS:   *maxLHS,
			Attrs:    restrict,
		})
		fmt.Printf("%d approximate FDs (error ≤ %.1f%%):\n", len(found), 100**maxErr)
		for _, f := range found {
			fmt.Printf("  %-50s error %.2f%%\n", f.FD.Format(in.Schema), 100*f.Error)
		}
		return nil
	}
	found := discovery.Discover(in, discovery.Options{
		MaxLHS:     *maxLHS,
		MaxResults: *maxOut,
		Attrs:      restrict,
	})
	fmt.Printf("%d minimal exact FDs:\n", len(found))
	for _, f := range found {
		fmt.Printf("  %s\n", f.Format(in.Schema))
	}
	return nil
}
