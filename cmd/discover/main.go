// Command discover mines functional dependencies from a CSV file, exactly
// or approximately — the workflow the paper's Section 1 motivates ("FDs
// that were automatically discovered from legacy data may be less
// reliable"), and the setup step of its experiments. The same miner is
// served over HTTP as POST /v1/discover by relatrustd.
//
// Usage:
//
//	discover -data people.csv -max-lhs 2
//	discover -data people.csv -max-lhs 2 -max-error 0.05
//	discover -data people.csv -attrs Surname,GivenName,Income
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"relatrust/internal/discovery"
	"relatrust/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "discover:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("discover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataPath = fs.String("data", "", "CSV file (header row defines the schema)")
		maxLHS   = fs.Int("max-lhs", 2, "largest LHS size to explore")
		maxErr   = fs.Float64("max-error", 0, "tolerated fraction of violating tuples (0 = exact FDs)")
		attrs    = fs.String("attrs", "", "comma-separated attribute subset to mine (default: all)")
		maxOut   = fs.Int("max", 0, "stop after this many FDs (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		fs.Usage()
		return fmt.Errorf("-data is required")
	}
	in, err := relation.ReadCSVFile(*dataPath)
	if err != nil {
		return err
	}
	var restrict relation.AttrSet
	if *attrs != "" {
		restrict, err = in.Schema.ParseAttrs(*attrs)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "%d tuples × %d attributes\n", in.N(), in.Schema.Width())

	if *maxErr > 0 {
		found, err := discovery.DiscoverApprox(in, discovery.ApproxOptions{
			MaxError:   *maxErr,
			MaxLHS:     *maxLHS,
			MaxResults: *maxOut,
			Attrs:      restrict,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d approximate FDs (error ≤ %.1f%%):\n", len(found), 100**maxErr)
		for _, f := range found {
			fmt.Fprintf(stdout, "  %-50s error %.2f%%\n", f.FD.Format(in.Schema), 100*f.Error)
		}
		return nil
	}
	found, err := discovery.Discover(in, discovery.Options{
		MaxLHS:     *maxLHS,
		MaxResults: *maxOut,
		Attrs:      restrict,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d minimal exact FDs:\n", len(found))
	for _, f := range found {
		fmt.Fprintf(stdout, "  %s\n", f.Format(in.Schema))
	}
	return nil
}
