// Command datagen emits a synthetic census-like CSV in which a chosen FD
// set holds exactly, optionally perturbed with the paper's error
// injectors. It is the offline stand-in for the UCI Census-Income data set
// the paper evaluates on.
//
// Usage:
//
//	datagen -n 5000 -o census.csv
//	datagen -n 5000 -fd-error 0.5 -data-error 0.05 -o dirty.csv -fds-out fds.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"relatrust/internal/fd"
	"relatrust/internal/gen"
	"relatrust/internal/relation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 5000, "number of tuples")
		width    = flag.Int("width", 34, "number of attributes (prefix of the census schema)")
		seed     = flag.Int64("seed", 1, "generator seed")
		dupRate  = flag.Float64("dup", 0.5, "fraction of near-duplicate tuples")
		fdErr    = flag.Float64("fd-error", 0, "fraction of LHS attributes removed from the FDs")
		dataErr  = flag.Float64("data-error", 0, "fraction of tuples given one injected violation")
		out      = flag.String("o", "census.csv", "output CSV path")
		fdsOut   = flag.String("fds-out", "", "write the (perturbed) FDs here, one per line")
		cleanOut = flag.String("clean-out", "", "also write the unperturbed data here")
		nfds     = flag.Int("fds", 1, "number of planted FDs (1 = the 6-LHS paper FD, 2 = two 3-LHS FDs)")
	)
	flag.Parse()

	spec := gen.SubSpec(gen.CensusSpec(), *width)
	var sigma fd.Set
	switch *nfds {
	case 1:
		sigma = fd.Set{gen.PaperFD(spec)}
	case 2:
		sigma = gen.TwoFDs(spec)
	default:
		return fmt.Errorf("-fds must be 1 or 2 (got %d)", *nfds)
	}

	clean, err := gen.GenerateWith(spec, sigma, gen.Config{N: *n, Seed: *seed, DupRate: *dupRate})
	if err != nil {
		return err
	}
	data := clean
	if *dataErr > 0 {
		p, err := gen.PerturbData(clean, sigma, *dataErr, *seed+1)
		if err != nil {
			return err
		}
		data = p.Instance
		fmt.Printf("injected %d cell errors\n", len(p.Cells))
	}
	outSigma := sigma
	if *fdErr > 0 {
		p, err := gen.PerturbFDs(sigma, *fdErr, *seed+2)
		if err != nil {
			return err
		}
		outSigma = p.Sigma
		fmt.Printf("removed %d LHS attributes from the FDs\n", p.TotalRemoved())
	}

	if err := relation.WriteCSVFile(*out, data); err != nil {
		return err
	}
	fmt.Printf("wrote %d tuples × %d attributes to %s\n", data.N(), spec.Schema.Width(), *out)
	if *cleanOut != "" {
		if err := relation.WriteCSVFile(*cleanOut, clean); err != nil {
			return err
		}
		fmt.Printf("wrote clean data to %s\n", *cleanOut)
	}
	if *fdsOut != "" {
		f, err := os.Create(*fdsOut)
		if err != nil {
			return err
		}
		for _, g := range outSigma {
			fmt.Fprintln(f, g.Format(spec.Schema))
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d FDs to %s\n", len(outSigma), *fdsOut)
	}
	return nil
}
