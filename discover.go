package relatrust

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"relatrust/internal/discovery"
	"relatrust/internal/relation"
	"relatrust/internal/session"
)

// NewAttrSet builds an attribute set from positions — the form
// DiscoverOptions.Attrs takes. Schema.ParseAttrs converts names instead.
func NewAttrSet(attrs ...int) AttrSet { return relation.NewAttrSet(attrs...) }

// DiscoveredFD is one mined dependency: the FD, its g3 error fraction
// (0 for exact FDs), and the lattice level (LHS size) that produced it.
type DiscoveredFD = discovery.Found

// AttrsRangeError reports a DiscoverOptions.Attrs set referencing a
// column outside the instance schema. The server maps it to 422
// schema_mismatch.
type AttrsRangeError = discovery.AttrsRangeError

// DiscoverOptions tunes the discovery entry points.
type DiscoverOptions struct {
	// MaxLHS is the largest LHS size to explore (the paper mines FDs with
	// "fewer than 6 attributes"). Default 3.
	MaxLHS int
	// MaxError is the largest tolerated g3 error: the fraction of tuples
	// that must be ignored for X → A to hold (0 = exact FDs only).
	MaxError float64
	// MaxResults stops the run after this many FDs (0 = unlimited).
	MaxResults int
	// Attrs restricts discovery to a subset of attributes (empty = all).
	Attrs AttrSet
	// Session, when non-nil, shares state across calls over the same
	// instance: discovery runs reuse the session's partition store, so a
	// second mining pass over a warm dataset skips the partitions the
	// first one cached. Nil gives the Discoverer a private session.
	Session *Session
	// Progress, when non-nil, observes the lattice walk: it is called at
	// the start of each level with the level (LHS size) and its candidate
	// count. Callbacks run synchronously on the mining goroutine.
	Progress func(level, sets int)
}

// Discoverer is the handle over one instance for FD discovery, mirroring
// Repairer: inputs are validated once at construction, and every entry
// point — the incremental Stream, the batch Discover — runs against the
// same session engine and its shared partition store.
//
// The instance must not be mutated while the Discoverer is in use.
type Discoverer struct {
	in  *Instance
	opt DiscoverOptions
	eng *session.Engine
}

// NewDiscoverer validates the inputs and returns the handle. Errors are
// structured: ErrEmptyInstance for an instance with no tuples, an
// *AttrsRangeError for an attribute restriction outside the schema. If
// opt.Session is nil the Discoverer creates and owns a private session.
func NewDiscoverer(in *Instance, opt DiscoverOptions) (*Discoverer, error) {
	if in.N() == 0 {
		return nil, ErrEmptyInstance
	}
	if err := discovery.ValidateAttrs(opt.Attrs, in.Schema.Width()); err != nil {
		return nil, err
	}
	if opt.MaxError < 0 {
		return nil, fmt.Errorf("relatrust: negative max error %v", opt.MaxError)
	}
	var eng *session.Engine
	if opt.Session != nil {
		var err error
		if eng, err = session.For(opt.Session.eng, in); err != nil {
			return nil, err
		}
	} else {
		eng = session.New(in)
	}
	return &Discoverer{in: in, opt: opt, eng: eng}, nil
}

// Instance returns the instance the Discoverer was built over.
func (d *Discoverer) Instance() *Instance { return d.in }

// Stream mines minimal FDs level by level and yields each the moment it
// is found, in mining order: levels ascend, LHS sets ascend within a
// level, RHS attributes ascend per LHS. The stream stops when the
// consumer breaks out of the loop. On failure — including cancellation,
// reported as context.Cause(ctx) — the iterator yields one final
// (zero, err) pair. Iterating the returned sequence again re-runs the
// mining pass (warm, against the session's partition store).
func (d *Discoverer) Stream(ctx context.Context) iter.Seq2[DiscoveredFD, error] {
	return func(yield func(DiscoveredFD, error) bool) {
		count := 0
		err := discovery.Stream(ctx, d.in, d.streamOptions(), func(f discovery.Found) error {
			count++
			if !yield(f, nil) {
				return errStopFrontier
			}
			if d.opt.MaxResults > 0 && count >= d.opt.MaxResults {
				return errStopFrontier
			}
			return nil
		})
		if err != nil && err != errStopFrontier {
			yield(DiscoveredFD{}, err)
		}
	}
}

// Discover runs the full mining pass and returns every discovered FD,
// sorted deterministically (by RHS, then LHS size, then LHS). With
// MaxResults set, the first MaxResults dependencies in mining order are
// returned, sorted — the same early-return contract as the CLI.
func (d *Discoverer) Discover(ctx context.Context) ([]DiscoveredFD, error) {
	var out []DiscoveredFD
	err := discovery.Stream(ctx, d.in, d.streamOptions(), func(f discovery.Found) error {
		out = append(out, f)
		if d.opt.MaxResults > 0 && len(out) >= d.opt.MaxResults {
			return errStopFrontier
		}
		return nil
	})
	if err != nil && err != errStopFrontier {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FD.RHS != out[j].FD.RHS {
			return out[i].FD.RHS < out[j].FD.RHS
		}
		if out[i].FD.LHS.Len() != out[j].FD.LHS.Len() {
			return out[i].FD.LHS.Len() < out[j].FD.LHS.Len()
		}
		return out[i].FD.LHS < out[j].FD.LHS
	})
	return out, nil
}

// Sigma collects the FDs of a Discover result into an FDSet, the form the
// repair entry points take — the bridge of the discover-then-repair flow.
func Sigma(found []DiscoveredFD) FDSet {
	out := make(FDSet, len(found))
	for i, f := range found {
		out[i] = f.FD
	}
	return out
}

func (d *Discoverer) streamOptions() discovery.StreamOptions {
	return discovery.StreamOptions{
		MaxLHS:   d.opt.MaxLHS,
		MaxError: d.opt.MaxError,
		Attrs:    d.opt.Attrs,
		Store:    d.eng.Partitions(),
		Progress: d.opt.Progress,
	}
}
