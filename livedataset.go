package relatrust

// LiveDataset: the facade over the live mutation tier (internal/live). A
// dataset that must keep serving repairs while its rows change wraps its
// instance in a LiveDataset; row batches are applied through Apply, and
// every Snapshot hands out an immutable (instance, session, generation)
// triple that Repairers — and in-flight frontier sweeps — can keep using
// for as long as they like while later mutations commit new generations
// behind them.

import (
	"relatrust/internal/live"
	"relatrust/internal/relation"
)

// ErrInvalidRowOp marks a mutation batch rejected by validation (row out
// of range, wrong tuple width, unknown kind); match with errors.Is. A
// rejected batch changes nothing.
var ErrInvalidRowOp = live.ErrBadOp

// RowOpKind selects what a RowOp does.
type RowOpKind int

const (
	// RowInsert appends Tuple as a new row.
	RowInsert RowOpKind = iota
	// RowUpdate replaces row Row with Tuple.
	RowUpdate
	// RowDelete removes row Row; the last row takes its index (see
	// MutationResult.Moves).
	RowDelete
)

// RowOp is one row mutation. Row indices address the instance as left by
// the preceding ops of the same batch: inserts append, deletes
// swap-remove.
type RowOp struct {
	Kind  RowOpKind
	Row   int   // update/delete target
	Tuple Tuple // insert/update payload (full row)
}

// RowMove reports one swap-remove renumbering: the row previously at From
// now lives at To.
type RowMove struct {
	From, To int
}

// MutationResult reports what an applied batch did.
type MutationResult struct {
	// Generation is the dataset's generation after the batch (unchanged
	// when every op was a no-op).
	Generation int64
	// Applied counts the ops that changed the instance (no-op updates are
	// dropped).
	Applied int
	// Moves lists the swap-remove renumberings, in application order.
	Moves []RowMove
	// ComponentsDirtied is how many conflict-hypergraph components lost
	// their memoized cover state to this batch.
	ComponentsDirtied int
	// NewRows is the instance's row count after the batch.
	NewRows int
}

// LiveStats is a live dataset's lifetime mutation effort.
type LiveStats struct {
	MutationsApplied  int64
	ComponentsDirtied int64
}

// LiveDataset is the mutable handle over one dataset: it owns the current
// (instance, generation) pair and keeps the repair machinery — conflict
// clusters, hypergraph components, memoized cover state — incrementally
// maintained across mutations, so a batch costs work proportional to what
// it touches instead of a full re-analysis.
//
// Generations are immutable. Snapshot returns the current triple; a
// Repairer built over it (pass the snapshot's Session via
// Options.Session) answers for exactly that generation, bit-identically
// to a Repairer built from scratch over the same rows, no matter how many
// batches commit while it sweeps. The instance handed to NewLiveDataset
// must not be mutated directly afterwards — all writes go through Apply.
//
// LiveDataset is safe for concurrent use: Apply serializes, Snapshot is
// cheap.
type LiveDataset struct {
	t *live.Table
}

// NewLiveDataset wraps the instance as a live dataset at generation 0.
func NewLiveDataset(in *Instance) *LiveDataset {
	return NewLiveDatasetAt(in, 0)
}

// NewLiveDatasetAt wraps the instance at a caller-chosen generation — the
// rehydration path of serving layers that persist the generation across
// restarts.
func NewLiveDatasetAt(in *Instance, generation int64) *LiveDataset {
	return &LiveDataset{t: live.NewTable(in, generation)}
}

// Apply commits a batch of row mutations as one new generation. The batch
// is atomic: any invalid op rejects the whole batch with ErrInvalidRowOp
// and nothing changes. An all-no-op batch commits nothing and keeps the
// current generation.
//
// precommit, when non-nil, runs after the new instance is built but
// before anything is published: serving layers persist the snapshot
// there, so a storage failure aborts the batch — the error is returned
// and the dataset stays on its old generation.
func (d *LiveDataset) Apply(ops []RowOp, precommit func(*Instance) error) (*MutationResult, error) {
	lops := make([]live.Op, len(ops))
	for i, op := range ops {
		lops[i] = live.Op{Kind: live.OpKind(op.Kind), Row: op.Row, Tuple: op.Tuple}
	}
	res, err := d.t.Apply(lops, precommit)
	if err != nil {
		return nil, err
	}
	out := &MutationResult{
		Generation:        res.Generation,
		Applied:           res.Applied,
		ComponentsDirtied: res.ComponentsDirtied,
		NewRows:           res.NewN,
	}
	for _, m := range res.Moves {
		out.Moves = append(out.Moves, RowMove{From: int(m.From), To: int(m.To)})
	}
	return out, nil
}

// Snapshot returns the current generation's (instance, session,
// generation) triple. The triple is immutable: build Repairers over the
// instance with Options{Session: s} and they answer for this generation —
// including ProgressEvent.Generation stamps — even after later Apply
// calls move the dataset on.
func (d *LiveDataset) Snapshot() (*Instance, *Session, int64) {
	in, eng, gen := d.t.Snapshot()
	return in, &Session{eng: eng}, gen
}

// Generation returns the current mutation generation.
func (d *LiveDataset) Generation() int64 { return d.t.Generation() }

// Rows returns the current generation's instance (shorthand for Snapshot
// when only the data is needed). Read-only, like every snapshot.
func (d *LiveDataset) Rows() *relation.Instance {
	in, _, _ := d.t.Snapshot()
	return in
}

// Stats returns the dataset's lifetime mutation counters.
func (d *LiveDataset) Stats() LiveStats {
	st := d.t.Stats()
	return LiveStats{MutationsApplied: st.MutationsApplied, ComponentsDirtied: st.ComponentsDirtied}
}

// Evict drops the dataset's warm incremental state (group indexes, shared
// dictionaries, cached analyses) without touching the data or the
// generation — the memory-pressure hook for serving layers. The next
// Apply or repair call rebuilds what it needs.
func (d *LiveDataset) Evict() { d.t.Evict() }
