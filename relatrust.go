// Package relatrust repairs inconsistent data together with inaccurate
// functional dependencies (FDs), implementing Beskales, Ilyas, Golab and
// Galiullin, "On the Relative Trust between Inconsistent Data and
// Inaccurate Constraints" (ICDE 2013).
//
// Given an instance I and an FD set Σ that I violates, the central
// question is whether the data or the constraints are wrong. The package
// exposes the paper's answer: a relative-trust parameter τ caps how many
// cells a repair may change; for each τ the system finds the FD relaxation
// Σ′ (LHS extensions only) closest to Σ such that I can be made to satisfy
// Σ′ within the budget, then materializes a near-minimal data repair
// I′ ⊨ Σ′. Sweeping τ from 0 (trust the data, fix the FDs) to δP(Σ, I)
// (trust the FDs, fix the data) enumerates a Pareto frontier of suggested
// repairs.
//
// # Quick start
//
// A Repairer is the handle over one (instance, Σ) pair: it validates the
// inputs once, owns the warm analysis state, and streams the Pareto
// frontier as each trust level finishes:
//
//	inst, _ := relatrust.ReadCSVFile("people.csv")
//	sigma, _ := relatrust.ParseFDs(inst.Schema, "Surname,GivenName->Income")
//	rp, err := relatrust.NewRepairer(inst, sigma, relatrust.Options{})
//	if err != nil { ... }
//	for r, err := range rp.Frontier(ctx) {
//	    if err != nil { ... }
//	    fmt.Println(r)
//	}
//
// Every Repairer method takes a context.Context: cancelling it aborts the
// FD-modification search promptly and returns context.Cause(ctx).
// Failures are structured — errors.Is recognizes ErrEmptyFDSet,
// ErrSchemaMismatch, ErrMaxVisited (a *MaxVisitedError carrying the
// search effort), and ErrNoRepairInBudget. Long sweeps are observable
// through Options.Progress.
//
// The free functions (SuggestRepairs, RepairWithBudget, MaxBudget, …) are
// back-compat wrappers that construct a Repairer and collect the stream
// with context.Background().
//
// The heavy lifting lives in the internal packages (relation, fd, conflict,
// search, repair, …); this package is the stable entry point.
package relatrust

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/repair"
	"relatrust/internal/search"
	"relatrust/internal/session"
	"relatrust/internal/weights"
)

// Re-exported core types. The aliases keep the public API to one import
// while the implementation stays modular.
type (
	// Schema is an ordered list of named attributes.
	Schema = relation.Schema
	// Instance is a set of tuples over a schema; repaired instances are
	// V-instances whose cells may hold variables ("any fresh value").
	Instance = relation.Instance
	// Tuple is one row.
	Tuple = relation.Tuple
	// Value is one cell: a constant or a variable.
	Value = relation.Value
	// AttrSet is a set of attribute positions.
	AttrSet = relation.AttrSet
	// CellRef names one cell of an instance.
	CellRef = relation.CellRef
	// FD is a functional dependency X → A.
	FD = fd.FD
	// FDSet is an ordered FD list Σ.
	FDSet = fd.Set
	// Repair is one suggested (Σ′, I′) pair with its bookkeeping.
	Repair = repair.Repair
	// DataRepair is a data-only repair: the V-instance and its changed
	// cells for a fixed FD set.
	DataRepair = repair.DataRepair
	// SearchStats reports the effort of the FD-modification search.
	SearchStats = search.Stats
	// WeightFunc prices appended LHS attributes.
	WeightFunc = weights.Func
	// ProgressEvent is one observation of a running frontier sweep,
	// delivered to Options.Progress.
	ProgressEvent = repair.ProgressEvent
	// ProgressKind names the sweep milestones a ProgressEvent reports.
	ProgressKind = repair.ProgressKind
	// MaxVisitedError is the typed form of ErrMaxVisited; errors.As
	// recovers the SearchStats at the abort.
	MaxVisitedError = search.MaxVisitedError
	// SchemaMismatchError is the typed form of ErrSchemaMismatch, naming
	// the offending FD.
	SchemaMismatchError = repair.SchemaMismatchError
	// BudgetError is the typed form of ErrNoRepairInBudget, carrying τ.
	BudgetError = repair.BudgetError
	// PanicError is the typed form of ErrPanic: a panic recovered inside
	// the parallel sweep machinery, carrying the panic value and stack.
	PanicError = search.PanicError
)

// Progress milestones (see ProgressEvent).
const (
	ProgressSweepStarted  = repair.ProgressSweepStarted
	ProgressTauFinished   = repair.ProgressTauFinished
	ProgressTauStarted    = repair.ProgressTauStarted
	ProgressSweepFinished = repair.ProgressSweepFinished
)

// Structured failure modes of the repair entry points, matched with
// errors.Is. The returned errors may be typed wrappers carrying detail
// (MaxVisitedError, SchemaMismatchError, BudgetError). Cancellation is
// reported as the cancelled context's cause — errors.Is(err,
// context.Canceled) for a plain cancel.
var (
	// ErrEmptyFDSet: the FD set Σ has no dependencies to repair against.
	ErrEmptyFDSet = repair.ErrEmptyFDSet
	// ErrEmptyInstance: the instance has no tuples.
	ErrEmptyInstance = repair.ErrEmptyInstance
	// ErrSchemaMismatch: an FD references attributes outside the
	// instance's schema.
	ErrSchemaMismatch = repair.ErrSchemaMismatch
	// ErrNoRepairInBudget: no FD relaxation fits the requested τ — the
	// paper's (φ, φ) answer, reported by Repairer.RepairWithBudget.
	ErrNoRepairInBudget = repair.ErrNoRepairInBudget
	// ErrMaxVisited: the FD-modification search hit Options.MaxVisited.
	ErrMaxVisited = search.ErrMaxVisited
	// ErrPanic: a panic was recovered during a sweep; the sweep failed
	// but the session and process stay usable.
	ErrPanic = search.ErrPanic
)

// NewSchema builds a schema from attribute names.
func NewSchema(names ...string) (*Schema, error) { return relation.NewSchema(names...) }

// NewInstance returns an empty instance of the schema.
func NewInstance(s *Schema) *Instance { return relation.NewInstance(s) }

// Const returns a constant cell value — the building block of RowOp
// tuples submitted to a LiveDataset.
func Const(s string) Value { return relation.Const(s) }

// ReadCSV parses a header-first CSV stream into an instance.
func ReadCSV(r io.Reader) (*Instance, error) { return relation.ReadCSV(r) }

// ReadCSVFile parses a header-first CSV file into an instance.
func ReadCSVFile(path string) (*Instance, error) { return relation.ReadCSVFile(path) }

// WriteCSV writes the instance with a header row.
func WriteCSV(w io.Writer, in *Instance) error { return relation.WriteCSV(w, in) }

// ParseFD reads one FD in "A,B->C" form against a schema.
func ParseFD(s *Schema, spec string) (FD, error) { return fd.Parse(s, spec) }

// ParseFDs reads a semicolon- or newline-separated FD list; "A->B,C"
// expands to one FD per RHS attribute.
func ParseFDs(s *Schema, specs string) (FDSet, error) { return fd.ParseSet(s, specs) }

// Session shares one repair-session engine — the conflict-analysis
// cluster arenas, dictionary-code columns, and pooled scratch of one
// instance — across facade calls. Create one per instance and pass it via
// Options.Session when issuing several repair calls over the same data
// (a budget sweep, MaxBudget followed by SuggestRepairs, repeated
// sampling): every call after the first forks the warm analysis instead
// of re-scanning the instance. The instance must not be mutated while the
// session is in use. Sessions are safe for concurrent use.
//
// A Repairer owns a Session implicitly; explicit Sessions remain useful to
// share state across several Repairers (or free-function calls) over the
// same instance.
type Session struct {
	eng *session.Engine
}

// NewSession returns a session over the instance.
func NewSession(in *Instance) *Session {
	return &Session{eng: session.New(in)}
}

// SessionStats reports a session engine's effort: analyses handed out and
// from-scratch cluster builds. Acquires−Builds is the number of
// constructions the warm session avoided — serving layers surface it to
// show a hot dataset paying for analysis once.
type SessionStats = session.Stats

// Stats returns a snapshot of the session's engine counters. It is safe to
// call concurrently with repair calls using the session.
func (s *Session) Stats() SessionStats { return s.eng.Stats() }

// Options tunes the repair entry points.
type Options struct {
	// Weights prices LHS extensions. Nil selects DistinctCountWeights on
	// the input instance — the paper's experimental choice.
	Weights WeightFunc
	// BestFirst disables the A* heuristic (mainly for comparison runs).
	BestFirst bool
	// Seed drives the randomized data-repair order; fixed seeds give
	// reproducible repairs.
	Seed int64
	// MaxVisited aborts runaway searches (0 = a large default). The abort
	// is reported as ErrMaxVisited.
	MaxVisited int
	// Workers sets the parallelism of the FD-modification search: successor
	// evaluation, goal tests, and open-list re-estimation run on this many
	// goroutines. 0 selects GOMAXPROCS; 1 forces the sequential engine.
	// Results are identical for every setting.
	Workers int
	// Session, when non-nil, shares analysis state across calls over the
	// same instance (see NewSession). Nil gives every call a private
	// engine (every Repairer, a private session).
	Session *Session
	// NoPartitionCache disables the parallel search engine's per-worker
	// partition cache. Results are identical either way; the knob exists
	// for memory-constrained runs and measurements.
	NoPartitionCache bool
	// NoDecomposition disables conflict-hypergraph decomposition: cover
	// queries run monolithically over the whole instance instead of
	// per connected component with memoized, worker-parallel responses.
	// The frontier is bit-identical either way; the knob exists for
	// measuring the decomposition's effect and as an escape hatch.
	NoDecomposition bool
	// Progress, when non-nil, observes frontier sweeps: τ levels starting
	// and finishing, states visited, and the partition-cache hit rate.
	// Callbacks run synchronously on the sweeping goroutine and must be
	// fast; they must not call back into the Repairer.
	Progress func(ProgressEvent)
	// Generation stamps every ProgressEvent with the mutation generation of
	// the dataset snapshot the sweep answers for. 0 defers to the session
	// engine's own generation, which LiveDataset.Snapshot sessions carry —
	// so sweeps over a live snapshot report their generation automatically.
	Generation int64
}

func (o Options) config(in *Instance) repair.Config {
	w := o.Weights
	if w == nil {
		w = weights.NewDistinctCount(in)
	}
	return repair.Config{
		Weights: w,
		Search: search.Options{
			BestFirst:        o.BestFirst,
			MaxVisited:       o.MaxVisited,
			Workers:          o.Workers,
			NoPartitionCache: o.NoPartitionCache,
			NoDecomposition:  o.NoDecomposition,
		},
		Seed:       o.Seed,
		Engine:     o.engine(),
		Progress:   o.Progress,
		Generation: o.Generation,
	}
}

// engine returns the session engine selected by the options, or nil.
func (o Options) engine() *session.Engine {
	if o.Session == nil {
		return nil
	}
	return o.Session.eng
}

// AttrCountWeights prices an extension by its number of attributes.
func AttrCountWeights() WeightFunc { return weights.AttrCount{} }

// DistinctCountWeights prices an extension by the number of distinct
// values it takes in the instance (informative attributes cost more).
func DistinctCountWeights(in *Instance) WeightFunc { return weights.NewDistinctCount(in) }

// EntropyWeights prices an extension by the entropy of its projection.
func EntropyWeights(in *Instance) WeightFunc { return weights.NewEntropy(in) }

// Repairer is the handle over one (instance, Σ) pair: inputs are validated
// once at construction, and every repair entry point — the streaming
// Frontier, single-budget repairs, data-only repairs, sampling — runs
// against the same warm session engine, so repeated calls fork cached
// analysis state instead of re-scanning the instance.
//
// The instance must not be mutated while the Repairer is in use. A
// Repairer is safe for concurrent use: each method call acquires private
// scratch from the shared engine.
type Repairer struct {
	in    *Instance
	sigma FDSet
	opt   Options
}

// NewRepairer validates the pair and returns the handle. Errors are
// structured: ErrEmptyFDSet, ErrEmptyInstance, or a *SchemaMismatchError
// (errors.Is(err, ErrSchemaMismatch)). If opt.Session is nil the Repairer
// creates and owns a private session over the instance.
func NewRepairer(in *Instance, sigma FDSet, opt Options) (*Repairer, error) {
	if err := repair.Validate(in, sigma); err != nil {
		return nil, err
	}
	if opt.Session == nil {
		opt.Session = NewSession(in)
	}
	return &Repairer{in: in, sigma: sigma, opt: opt}, nil
}

// Instance returns the instance the Repairer was built over.
func (r *Repairer) Instance() *Instance { return r.in }

// Sigma returns the FD set the Repairer was built over.
func (r *Repairer) Sigma() FDSet { return r.sigma }

// errStopFrontier signals that the consumer of a Frontier stream broke out
// of the range loop; it never escapes the iterator.
var errStopFrontier = errors.New("relatrust: frontier consumer stopped")

// Frontier implements the paper's Algorithm 6 across the entire
// relative-trust spectrum as a stream: it yields one repair per distinct
// trust level, ordered from "trust the FDs" (data-only repair, unchanged
// Σ) to "trust the data" (FD-only repair, unchanged I), each Pareto point
// delivered the moment its trust level is finalized. The yielded sequence
// is exactly SuggestRepairs' result — same repairs, same order — except
// that each point's Stats snapshot the search effort up to that point
// rather than the whole sweep's.
//
// The sweep stops when the consumer breaks out of the loop. On failure —
// including cancellation, reported as context.Cause(ctx) — the iterator
// yields one final (nil, err) pair. Iterating the returned sequence again
// re-runs the sweep.
func (r *Repairer) Frontier(ctx context.Context) iter.Seq2[*Repair, error] {
	return r.frontier(ctx, 0, -1)
}

// FrontierRange restricts Frontier to τ ∈ [tauLow, tauHigh].
//
// Because each yielded point is final the moment it is yielded (no
// later goal can supersede it), FrontierRange is also the resume
// primitive: after consuming a frontier's points up to some repair r,
// FrontierRange(ctx, tauLow, r.DeltaP-1) yields exactly the remaining
// points of that frontier, in order. The durable job tier
// (internal/jobs) depends on this contract to make a crash-resumed
// sweep's stream byte-identical to an uninterrupted one; a last point
// with DeltaP-1 below tauLow means the frontier was already complete.
func (r *Repairer) FrontierRange(ctx context.Context, tauLow, tauHigh int) iter.Seq2[*Repair, error] {
	return r.frontier(ctx, tauLow, tauHigh)
}

// frontier is the shared iterator; tauHigh < 0 means δP(Σ, I).
func (r *Repairer) frontier(ctx context.Context, tauLow, tauHigh int) iter.Seq2[*Repair, error] {
	return func(yield func(*Repair, error) bool) {
		s, err := repair.NewSession(r.in, r.sigma, r.opt.config(r.in))
		if err != nil {
			yield(nil, err)
			return
		}
		defer s.Close()
		high := tauHigh
		if high < 0 {
			high = s.DeltaPOriginal()
		}
		err = s.StreamRange(ctx, tauLow, high, func(rep *Repair) error {
			if !yield(rep, nil) {
				return errStopFrontier
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopFrontier) {
			yield(nil, err)
		}
	}
}

// RepairWithBudget implements the paper's Algorithm 1 for one trust level:
// it returns the repair (Σ′, I′) whose FD set is closest to sigma among
// all relaxations reachable with at most tau cell changes. When no
// relaxation fits the budget it returns a *BudgetError matching
// ErrNoRepairInBudget. I′ satisfies Σ′ and differs from the input in at
// most tau cells.
func (r *Repairer) RepairWithBudget(ctx context.Context, tau int) (*Repair, error) {
	if tau < 0 {
		return nil, fmt.Errorf("relatrust: negative cell-change budget %d", tau)
	}
	s, err := repair.NewSession(r.in, r.sigma, r.opt.config(r.in))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	rep, err := s.Run(ctx, tau)
	if err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, &repair.BudgetError{Tau: tau}
	}
	return rep, nil
}

// MaxBudget returns δP(Σ, I): the cell-change budget beyond which the data
// can always be repaired without touching Σ. It is the natural upper end
// of the τ range and the denominator of relative trust τr = τ/δP.
func (r *Repairer) MaxBudget(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, context.Cause(ctx)
	}
	s, err := repair.NewSession(r.in, r.sigma, r.opt.config(r.in))
	if err != nil {
		return 0, err
	}
	defer s.Close()
	return s.DeltaPOriginal(), nil
}

// Sample draws up to k distinct data repairs for the fixed FD set (no FD
// modification), exposing the different minimal ways the violations can be
// resolved; see the paper's reference [3]. Cancelling ctx aborts between
// draws with context.Cause(ctx).
func (r *Repairer) Sample(ctx context.Context, k int) ([]*DataRepair, error) {
	return repair.SampleDataRepairs(ctx, r.in, r.sigma, k, r.opt.Seed, 0, r.opt.engine())
}

// RepairDataOnly materializes a data repair for the fixed FD set without
// touching the FDs (the τ = δP end of the spectrum, as classic cleaning
// systems do). Cells in pinned are hard constraints that must not change;
// pass nil to allow any cell.
func (r *Repairer) RepairDataOnly(ctx context.Context, pinned map[CellRef]bool) (*DataRepair, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	if pinned == nil {
		return repair.RepairData(r.in, r.sigma, nil, r.opt.Seed, r.opt.engine())
	}
	return repair.RepairDataPinned(r.in, r.sigma, pinned, r.opt.Seed, r.opt.engine())
}

// RepairWithBudget is the back-compat wrapper around
// Repairer.RepairWithBudget with context.Background(); it keeps the
// original contract of returning nil (the paper's (φ, φ)) instead of
// ErrNoRepairInBudget when no relaxation fits the budget.
func RepairWithBudget(in *Instance, sigma FDSet, tau int, opt Options) (*Repair, error) {
	r, err := NewRepairer(in, sigma, opt)
	if err != nil {
		return nil, err
	}
	rep, err := r.RepairWithBudget(context.Background(), tau)
	if errors.Is(err, ErrNoRepairInBudget) {
		return nil, nil
	}
	return rep, err
}

// SuggestRepairs is the back-compat wrapper collecting Repairer.Frontier
// with context.Background(): one repair per distinct trust level, ordered
// from "trust the FDs" to "trust the data", Pareto-optimal with respect to
// (FD distance, cell changes).
func SuggestRepairs(in *Instance, sigma FDSet, opt Options) ([]*Repair, error) {
	r, err := NewRepairer(in, sigma, opt)
	if err != nil {
		return nil, err
	}
	return collectFrontier(r.Frontier(context.Background()))
}

// SuggestRepairsInRange restricts SuggestRepairs to τ ∈ [tauLow, tauHigh].
func SuggestRepairsInRange(in *Instance, sigma FDSet, tauLow, tauHigh int, opt Options) ([]*Repair, error) {
	r, err := NewRepairer(in, sigma, opt)
	if err != nil {
		return nil, err
	}
	return collectFrontier(r.FrontierRange(context.Background(), tauLow, tauHigh))
}

// collectFrontier drains a frontier stream into the batch form.
func collectFrontier(seq iter.Seq2[*Repair, error]) ([]*Repair, error) {
	var out []*Repair
	for r, err := range seq {
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MaxBudget is the back-compat wrapper around Repairer.MaxBudget with
// context.Background().
func MaxBudget(in *Instance, sigma FDSet, opt Options) (int, error) {
	r, err := NewRepairer(in, sigma, opt)
	if err != nil {
		return 0, err
	}
	return r.MaxBudget(context.Background())
}

// SampleRepairs is the back-compat wrapper around Repairer.Sample with
// context.Background().
func SampleRepairs(in *Instance, sigma FDSet, k int, opt Options) ([]*DataRepair, error) {
	r, err := NewRepairer(in, sigma, opt)
	if err != nil {
		return nil, err
	}
	return r.Sample(context.Background(), k)
}

// RepairDataOnly is the back-compat wrapper around Repairer.RepairDataOnly
// with context.Background(). Unlike the pre-Repairer versions it honors
// opt.Session — a warm engine also serves the τ = δP end of the spectrum —
// and validates the pair like every other entry point.
func RepairDataOnly(in *Instance, sigma FDSet, pinned map[CellRef]bool, opt Options) (*DataRepair, error) {
	r, err := NewRepairer(in, sigma, opt)
	if err != nil {
		return nil, err
	}
	return r.RepairDataOnly(context.Background(), pinned)
}

// Violations reports up to max violating tuple pairs (0 = all; beware of
// quadratic blowup on badly violated instances).
func Violations(in *Instance, sigma FDSet, max int) []fd.Violation {
	return sigma.Violations(in, max)
}

// Satisfies reports whether the instance satisfies every FD of sigma.
func Satisfies(in *Instance, sigma FDSet) bool { return sigma.SatisfiedBy(in) }
