// Package relatrust repairs inconsistent data together with inaccurate
// functional dependencies (FDs), implementing Beskales, Ilyas, Golab and
// Galiullin, "On the Relative Trust between Inconsistent Data and
// Inaccurate Constraints" (ICDE 2013).
//
// Given an instance I and an FD set Σ that I violates, the central
// question is whether the data or the constraints are wrong. The package
// exposes the paper's answer: a relative-trust parameter τ caps how many
// cells a repair may change; for each τ the system finds the FD relaxation
// Σ′ (LHS extensions only) closest to Σ such that I can be made to satisfy
// Σ′ within the budget, then materializes a near-minimal data repair
// I′ ⊨ Σ′. Sweeping τ from 0 (trust the data, fix the FDs) to δP(Σ, I)
// (trust the FDs, fix the data) enumerates a Pareto frontier of suggested
// repairs.
//
// # Quick start
//
//	inst, _ := relatrust.ReadCSVFile("people.csv")
//	sigma, _ := relatrust.ParseFDs(inst.Schema, "Surname,GivenName->Income")
//	repairs, _ := relatrust.SuggestRepairs(inst, sigma, relatrust.Options{})
//	for _, r := range repairs {
//	    fmt.Println(r)
//	}
//
// The heavy lifting lives in the internal packages (relation, fd, conflict,
// search, repair, …); this package is the stable entry point.
package relatrust

import (
	"fmt"
	"io"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/repair"
	"relatrust/internal/search"
	"relatrust/internal/session"
	"relatrust/internal/weights"
)

// Re-exported core types. The aliases keep the public API to one import
// while the implementation stays modular.
type (
	// Schema is an ordered list of named attributes.
	Schema = relation.Schema
	// Instance is a set of tuples over a schema; repaired instances are
	// V-instances whose cells may hold variables ("any fresh value").
	Instance = relation.Instance
	// Tuple is one row.
	Tuple = relation.Tuple
	// Value is one cell: a constant or a variable.
	Value = relation.Value
	// AttrSet is a set of attribute positions.
	AttrSet = relation.AttrSet
	// CellRef names one cell of an instance.
	CellRef = relation.CellRef
	// FD is a functional dependency X → A.
	FD = fd.FD
	// FDSet is an ordered FD list Σ.
	FDSet = fd.Set
	// Repair is one suggested (Σ′, I′) pair with its bookkeeping.
	Repair = repair.Repair
	// SearchStats reports the effort of the FD-modification search.
	SearchStats = search.Stats
	// WeightFunc prices appended LHS attributes.
	WeightFunc = weights.Func
)

// NewSchema builds a schema from attribute names.
func NewSchema(names ...string) (*Schema, error) { return relation.NewSchema(names...) }

// NewInstance returns an empty instance of the schema.
func NewInstance(s *Schema) *Instance { return relation.NewInstance(s) }

// ReadCSV parses a header-first CSV stream into an instance.
func ReadCSV(r io.Reader) (*Instance, error) { return relation.ReadCSV(r) }

// ReadCSVFile parses a header-first CSV file into an instance.
func ReadCSVFile(path string) (*Instance, error) { return relation.ReadCSVFile(path) }

// WriteCSV writes the instance with a header row.
func WriteCSV(w io.Writer, in *Instance) error { return relation.WriteCSV(w, in) }

// ParseFD reads one FD in "A,B->C" form against a schema.
func ParseFD(s *Schema, spec string) (FD, error) { return fd.Parse(s, spec) }

// ParseFDs reads a semicolon- or newline-separated FD list; "A->B,C"
// expands to one FD per RHS attribute.
func ParseFDs(s *Schema, specs string) (FDSet, error) { return fd.ParseSet(s, specs) }

// Session shares one repair-session engine — the conflict-analysis
// cluster arenas, dictionary-code columns, and pooled scratch of one
// instance — across facade calls. Create one per instance and pass it via
// Options.Session when issuing several repair calls over the same data
// (a budget sweep, MaxBudget followed by SuggestRepairs, repeated
// sampling): every call after the first forks the warm analysis instead
// of re-scanning the instance. The instance must not be mutated while the
// session is in use. Sessions are safe for concurrent use.
type Session struct {
	eng *session.Engine
}

// NewSession returns a session over the instance.
func NewSession(in *Instance) *Session {
	return &Session{eng: session.New(in)}
}

// Options tunes the repair entry points.
type Options struct {
	// Weights prices LHS extensions. Nil selects DistinctCountWeights on
	// the input instance — the paper's experimental choice.
	Weights WeightFunc
	// BestFirst disables the A* heuristic (mainly for comparison runs).
	BestFirst bool
	// Seed drives the randomized data-repair order; fixed seeds give
	// reproducible repairs.
	Seed int64
	// MaxVisited aborts runaway searches (0 = a large default).
	MaxVisited int
	// Workers sets the parallelism of the FD-modification search: successor
	// evaluation, goal tests, and open-list re-estimation run on this many
	// goroutines. 0 selects GOMAXPROCS; 1 forces the sequential engine.
	// Results are identical for every setting.
	Workers int
	// Session, when non-nil, shares analysis state across calls over the
	// same instance (see NewSession). Nil gives every call a private
	// engine.
	Session *Session
	// NoPartitionCache disables the parallel search engine's per-worker
	// partition cache. Results are identical either way; the knob exists
	// for memory-constrained runs and measurements.
	NoPartitionCache bool
}

func (o Options) config(in *Instance) repair.Config {
	w := o.Weights
	if w == nil {
		w = weights.NewDistinctCount(in)
	}
	return repair.Config{
		Weights: w,
		Search: search.Options{
			BestFirst:        o.BestFirst,
			MaxVisited:       o.MaxVisited,
			Workers:          o.Workers,
			NoPartitionCache: o.NoPartitionCache,
		},
		Seed:   o.Seed,
		Engine: o.engine(),
	}
}

// engine returns the session engine selected by the options, or nil.
func (o Options) engine() *session.Engine {
	if o.Session == nil {
		return nil
	}
	return o.Session.eng
}

// AttrCountWeights prices an extension by its number of attributes.
func AttrCountWeights() WeightFunc { return weights.AttrCount{} }

// DistinctCountWeights prices an extension by the number of distinct
// values it takes in the instance (informative attributes cost more).
func DistinctCountWeights(in *Instance) WeightFunc { return weights.NewDistinctCount(in) }

// EntropyWeights prices an extension by the entropy of its projection.
func EntropyWeights(in *Instance) WeightFunc { return weights.NewEntropy(in) }

// RepairWithBudget implements the paper's Algorithm 1 for one trust level:
// it returns the repair (Σ′, I′) whose FD set is closest to sigma among
// all relaxations reachable with at most tau cell changes, or nil if no
// relaxation fits the budget. I′ satisfies Σ′ and differs from the input
// in at most tau cells.
func RepairWithBudget(in *Instance, sigma FDSet, tau int, opt Options) (*Repair, error) {
	if tau < 0 {
		return nil, fmt.Errorf("relatrust: negative cell-change budget %d", tau)
	}
	return repair.Run(in, sigma, tau, opt.config(in))
}

// SuggestRepairs implements the paper's Algorithm 6 across the entire
// relative-trust spectrum: it returns one repair per distinct trust level,
// ordered from "trust the FDs" (data-only repair, unchanged Σ) to "trust
// the data" (FD-only repair, unchanged I). The results are Pareto-optimal
// with respect to (FD distance, cell changes).
func SuggestRepairs(in *Instance, sigma FDSet, opt Options) ([]*Repair, error) {
	s, err := repair.NewSession(in, sigma, opt.config(in))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.RunRange(0, s.DeltaPOriginal())
}

// SuggestRepairsInRange restricts SuggestRepairs to τ ∈ [tauLow, tauHigh].
func SuggestRepairsInRange(in *Instance, sigma FDSet, tauLow, tauHigh int, opt Options) ([]*Repair, error) {
	s, err := repair.NewSession(in, sigma, opt.config(in))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.RunRange(tauLow, tauHigh)
}

// MaxBudget returns δP(Σ, I): the cell-change budget beyond which the data
// can always be repaired without touching Σ. It is the natural upper end
// of the τ range and the denominator of relative trust τr = τ/δP.
func MaxBudget(in *Instance, sigma FDSet, opt Options) (int, error) {
	s, err := repair.NewSession(in, sigma, opt.config(in))
	if err != nil {
		return 0, err
	}
	defer s.Close()
	return s.DeltaPOriginal(), nil
}

// SampleRepairs draws up to k distinct data repairs for a fixed FD set
// (no FD modification), exposing the different minimal ways the
// violations can be resolved; see the paper's reference [3].
func SampleRepairs(in *Instance, sigma FDSet, k int, opt Options) ([]*repair.DataRepair, error) {
	return repair.SampleDataRepairs(in, sigma, k, opt.Seed, 0, opt.engine())
}

// RepairDataOnly materializes a data repair for a fixed FD set without
// touching the FDs (the τ = δP end of the spectrum, as classic cleaning
// systems do). Cells in pinned are hard constraints that must not change;
// pass nil to allow any cell.
func RepairDataOnly(in *Instance, sigma FDSet, pinned map[CellRef]bool, opt Options) (*repair.DataRepair, error) {
	if pinned == nil {
		return repair.RepairData(in, sigma, nil, opt.Seed)
	}
	return repair.RepairDataPinned(in, sigma, pinned, opt.Seed)
}

// Violations reports up to max violating tuple pairs (0 = all; beware of
// quadratic blowup on badly violated instances).
func Violations(in *Instance, sigma FDSet, max int) []fd.Violation {
	return sigma.Violations(in, max)
}

// Satisfies reports whether the instance satisfies every FD of sigma.
func Satisfies(in *Instance, sigma FDSet) bool { return sigma.SatisfiedBy(in) }
