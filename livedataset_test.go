package relatrust_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"relatrust"
	"relatrust/internal/testkit"
)

// randRowOps draws a mixed batch against a dataset of n rows and returns
// the expected row count after it. Values come from the same tiny domain
// testkit.RandomInstance draws from, so mutations both create and destroy
// violations.
func randRowOps(rng *rand.Rand, n, width, dom int) ([]relatrust.RowOp, int) {
	k := 1 + rng.Intn(5)
	ops := make([]relatrust.RowOp, 0, k)
	tuple := func() relatrust.Tuple {
		t := make(relatrust.Tuple, width)
		for a := range t {
			t[a] = relatrust.Const(fmt.Sprintf("v%d", rng.Intn(dom)))
		}
		return t
	}
	for i := 0; i < k; i++ {
		switch {
		case n == 0 || rng.Intn(3) == 0:
			ops = append(ops, relatrust.RowOp{Kind: relatrust.RowInsert, Tuple: tuple()})
			n++
		case rng.Intn(2) == 0:
			ops = append(ops, relatrust.RowOp{Kind: relatrust.RowUpdate, Row: rng.Intn(n), Tuple: tuple()})
		default:
			ops = append(ops, relatrust.RowOp{Kind: relatrust.RowDelete, Row: rng.Intn(n)})
			n--
		}
	}
	return ops, n
}

// frontierFingerprint renders a frontier stream into one comparable
// string: per point the FD set, costs, and the full repaired instance
// (every cell, variables included). Byte-equal fingerprints mean
// byte-equal frontiers.
func frontierFingerprint(t *testing.T, rp *relatrust.Repairer) string {
	t.Helper()
	out := ""
	for r, err := range rp.Frontier(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		out += fmt.Sprintf("tau=%d sigma=%s cost=%g deltap=%d changed=%v rows=%v\n",
			r.Tau, r.Sigma, r.FDCost, r.DeltaP, r.Data.Changed, r.Data.Instance.Tuples)
	}
	return out
}

// TestLiveDatasetFrontierMatchesFresh is the facade-level oracle: after a
// randomized mutation stream, a Repairer over the live dataset's snapshot
// (spliced analyses, memo-carrying evaluators, warm engine) must stream a
// frontier byte-identical to a Repairer built from scratch over a copy of
// the same rows.
func TestLiveDatasetFrontierMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const width, dom = 4, 2
	base := testkit.RandomInstance(rng, 40, width, dom)
	sigma := testkit.RandomFDs(rng, width, 2, 2)
	ds := relatrust.NewLiveDatasetAt(base, 1)

	// Warm the repair machinery so later snapshots carry spliced state
	// rather than rebuilding from scratch.
	{
		in, sess, _ := ds.Snapshot()
		rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{Seed: 7, Session: sess})
		if err != nil {
			t.Fatal(err)
		}
		frontierFingerprint(t, rp)
	}

	n := base.N()
	for round := 0; round < 6; round++ {
		ops, wantN := randRowOps(rng, n, width, dom)
		res, err := ds.Apply(ops, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.NewRows != wantN {
			t.Fatalf("round %d: NewRows = %d, want %d", round, res.NewRows, wantN)
		}
		n = wantN

		in, sess, gen := ds.Snapshot()
		live, err := relatrust.NewRepairer(in, sigma, relatrust.Options{Seed: 7, Session: sess})
		if err != nil {
			t.Fatal(err)
		}
		freshIn := in.Clone() // same rows, none of the live tier's state
		fresh, err := relatrust.NewRepairer(freshIn, sigma, relatrust.Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := frontierFingerprint(t, live), frontierFingerprint(t, fresh); got != want {
			t.Fatalf("round %d (generation %d): frontier over live snapshot diverged from fresh repairer\nlive:\n%s\nfresh:\n%s",
				round, gen, got, want)
		}
	}
	if st := ds.Stats(); st.MutationsApplied == 0 {
		t.Fatalf("no mutations recorded: %+v", st)
	}
}

// TestLiveDatasetSnapshotSurvivesMutations pins the facade's isolation
// contract: a Repairer built over a snapshot keeps streaming that
// generation's frontier — byte-identical to a from-scratch run over the
// old rows — while the dataset moves on underneath it.
func TestLiveDatasetSnapshotSurvivesMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const width, dom = 4, 2
	base := testkit.RandomInstance(rng, 40, width, dom)
	sigma := testkit.RandomFDs(rng, width, 2, 2)
	ds := relatrust.NewLiveDatasetAt(base, 1)

	oldIn, oldSess, oldGen := ds.Snapshot()
	oldCopy := oldIn.Clone()

	n := base.N()
	for round := 0; round < 5; round++ {
		ops, wantN := randRowOps(rng, n, width, dom)
		if _, err := ds.Apply(ops, nil); err != nil {
			t.Fatal(err)
		}
		n = wantN
	}
	if g := ds.Generation(); g == oldGen {
		t.Fatalf("generation did not advance")
	}

	pinned, err := relatrust.NewRepairer(oldIn, sigma, relatrust.Options{Seed: 3, Session: oldSess})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := relatrust.NewRepairer(oldCopy, sigma, relatrust.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := frontierFingerprint(t, pinned), frontierFingerprint(t, fresh); got != want {
		t.Fatalf("pinned snapshot drifted after later mutations\npinned:\n%s\nfresh:\n%s", got, want)
	}
}

// TestLiveDatasetProgressGeneration checks the generation flows from the
// snapshot's engine into every ProgressEvent without the caller setting
// Options.Generation, and that an explicit Options.Generation wins.
func TestLiveDatasetProgressGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const width, dom = 3, 2
	base := testkit.RandomInstance(rng, 20, width, dom)
	sigma := testkit.RandomFDs(rng, width, 2, 2)
	ds := relatrust.NewLiveDatasetAt(base, 5)
	if _, err := ds.Apply([]relatrust.RowOp{{Kind: relatrust.RowDelete, Row: 0}}, nil); err != nil {
		t.Fatal(err)
	}

	in, sess, gen := ds.Snapshot()
	if gen != 6 {
		t.Fatalf("generation = %d, want 6", gen)
	}
	seen := 0
	rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{
		Seed:    1,
		Session: sess,
		Progress: func(ev relatrust.ProgressEvent) {
			seen++
			if ev.Generation != gen {
				t.Errorf("event %d: generation %d, want %d", seen, ev.Generation, gen)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	frontierFingerprint(t, rp)
	if seen == 0 {
		t.Fatalf("no progress events observed")
	}

	seen = 0
	rp, err = relatrust.NewRepairer(in, sigma, relatrust.Options{
		Seed:       1,
		Session:    sess,
		Generation: 99,
		Progress: func(ev relatrust.ProgressEvent) {
			seen++
			if ev.Generation != 99 {
				t.Errorf("event %d: generation %d, want explicit 99", seen, ev.Generation)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	frontierFingerprint(t, rp)
	if seen == 0 {
		t.Fatalf("no progress events observed with explicit generation")
	}
}

// TestLiveDatasetRejectsBadBatch checks validation surfaces as
// ErrInvalidRowOp and leaves the dataset untouched.
func TestLiveDatasetRejectsBadBatch(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{{"a", "b"}})
	ds := relatrust.NewLiveDataset(in)
	_, err := ds.Apply([]relatrust.RowOp{{Kind: relatrust.RowDelete, Row: 3}}, nil)
	if !errors.Is(err, relatrust.ErrInvalidRowOp) {
		t.Fatalf("err = %v, want ErrInvalidRowOp", err)
	}
	if ds.Generation() != 0 || ds.Rows().N() != 1 {
		t.Fatalf("rejected batch changed the dataset")
	}
}
