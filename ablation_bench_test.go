package relatrust_test

// Ablation benchmarks for the design decisions documented in DESIGN.md:
// the A* heuristic's difference-set budget, the edge-sampling cap, the
// choice of weighting function, and the tuple-wise vs cell-wise data
// repair strategy. Each reports the figure of merit that motivates the
// chosen default.

import (
	"context"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/experiments"
	"relatrust/internal/gen"
	"relatrust/internal/repair"
	"relatrust/internal/search"
	"relatrust/internal/weights"
)

// ablationWorkload is a mid-size FD-perturbed workload where the search
// has real work to do.
func ablationWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	spec := gen.SubSpec(gen.CensusSpec(), 16)
	sigma := gen.TwoFDs(spec)
	w, err := experiments.MakeWorkload(spec, sigma, 1500, 0.34, 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkAblationHeuristicBudget sweeps MaxDiffSets: 0 disables the
// heuristic entirely (best-first), larger values tighten gc(S) at higher
// per-state cost. The visited-states metric shows the pruning payoff.
func BenchmarkAblationHeuristicBudget(b *testing.B) {
	w := ablationWorkload(b)
	for _, maxDs := range []int{1, 2, 3, 6} {
		b.Run(benchName("maxDiffSets", maxDs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				an := conflict.New(w.Dirty, w.SigmaD)
				s := search.NewSearcher(an, weights.NewDistinctCount(w.Dirty), search.Options{
					MaxDiffSets: maxDs,
				})
				res, err := s.Find(context.Background(), s.DeltaPOriginal()/100)
				if err != nil {
					b.Fatal(err)
				}
				if res != nil {
					b.ReportMetric(float64(res.Stats.Visited), "visited")
					b.ReportMetric(float64(res.Stats.GCCalls), "gc-calls")
				}
			}
		})
	}
}

// BenchmarkAblationEdgeSampling sweeps the per-cluster edge cap feeding
// difference-set multiplicities: smaller caps are cheaper but loosen the
// heuristic.
func BenchmarkAblationEdgeSampling(b *testing.B) {
	w := ablationWorkload(b)
	for _, cap := range []int{5, 50, 500} {
		b.Run(benchName("capPerCluster", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				an := conflict.New(w.Dirty, w.SigmaD)
				s := search.NewSearcher(an, weights.NewDistinctCount(w.Dirty), search.Options{
					CapPerCluster: cap,
				})
				res, err := s.Find(context.Background(), s.DeltaPOriginal()/100)
				if err != nil {
					b.Fatal(err)
				}
				if res != nil {
					b.ReportMetric(float64(res.Stats.Visited), "visited")
				}
			}
		})
	}
}

// BenchmarkAblationWeights compares the weighting functions: attr-count is
// free to evaluate, distinct-count (the paper's choice) and entropy price
// informativeness but cost a scan per new attribute set.
func BenchmarkAblationWeights(b *testing.B) {
	w := ablationWorkload(b)
	builders := map[string]func() weights.Func{
		"attr-count":     func() weights.Func { return weights.AttrCount{} },
		"distinct-count": func() weights.Func { return weights.NewDistinctCount(w.Dirty) },
		"entropy":        func() weights.Func { return weights.NewEntropy(w.Dirty) },
	}
	for name, mk := range builders {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				an := conflict.New(w.Dirty, w.SigmaD)
				s := search.NewSearcher(an, mk(), search.DefaultOptions())
				if _, err := s.Find(context.Background(), s.DeltaPOriginal()/100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRepairStrategy compares the paper's tuple-wise repair
// (bounded changes per tuple) against the cell-wise chase of the paper's
// reference [3]; the changed-cells metric shows the quality difference.
func BenchmarkAblationRepairStrategy(b *testing.B) {
	w := ablationWorkload(b)
	b.Run("tuple-wise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := repair.RepairData(w.Dirty, w.SigmaD, nil, int64(i), nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.NumChanges()), "changed-cells")
		}
	})
	b.Run("cell-wise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := repair.RepairDataCellwise(w.Dirty, w.SigmaD, nil, int64(i), nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.NumChanges()), "changed-cells")
		}
	})
}

// BenchmarkAblationParallelSampling measures the parallel Sampling-Repair
// speedup over the serial form (Section 7 notes the embarrassing
// parallelism; Range-Repair still wins sequentially, see Figure 13).
func BenchmarkAblationParallelSampling(b *testing.B) {
	w := ablationWorkload(b)
	s, err := w.Session(true, 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	dp := s.DeltaPOriginal()
	taus := []int{dp / 10, dp / 5, dp / 3, dp / 2, dp}
	cfg := repair.Config{Weights: weights.NewDistinctCount(w.Dirty), Seed: 42}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.RunSampling(context.Background(), w.Dirty, w.SigmaD, taus, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.RunSamplingParallel(context.Background(), w.Dirty, w.SigmaD, taus, cfg, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for ; v > 0; v /= 10 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
	}
	return string(buf)
}
