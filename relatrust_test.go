package relatrust_test

import (
	"strings"
	"testing"

	"relatrust"
)

const zipCSV = `City,ZIP
A,1
A,2
B,3
`

func load(t *testing.T) (*relatrust.Instance, relatrust.FDSet) {
	t.Helper()
	in, err := relatrust.ReadCSV(strings.NewReader(zipCSV))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, "City->ZIP")
	if err != nil {
		t.Fatal(err)
	}
	return in, sigma
}

func TestFacadeEndToEnd(t *testing.T) {
	in, sigma := load(t)
	if relatrust.Satisfies(in, sigma) {
		t.Fatal("fixture should violate the FD")
	}
	if got := len(relatrust.Violations(in, sigma, 0)); got != 1 {
		t.Fatalf("violations = %d, want 1", got)
	}
	dp, err := relatrust.MaxBudget(in, sigma, relatrust.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dp != 1 {
		t.Fatalf("MaxBudget = %d, want 1 (one cover tuple × α=1)", dp)
	}

	repairs, err := relatrust.SuggestRepairs(in, sigma, relatrust.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) == 0 {
		t.Fatal("no repairs suggested")
	}
	for _, r := range repairs {
		if !relatrust.Satisfies(r.Data.Instance, r.Sigma) {
			t.Errorf("repair %v inconsistent", r)
		}
	}
	first := repairs[0]
	if first.FDCost != 0 || first.Data.NumChanges() != 1 {
		t.Errorf("first repair should be the pure data repair (1 change), got cost=%v changes=%d",
			first.FDCost, first.Data.NumChanges())
	}
}

func TestFacadeRepairWithBudget(t *testing.T) {
	in, sigma := load(t)
	// The two-attribute schema offers no attribute to append (City is the
	// LHS, ZIP the RHS), so τ=0 is infeasible: the paper's (φ, φ).
	r, err := relatrust.RepairWithBudget(in, sigma, 0, relatrust.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		t.Fatalf("τ=0 on an unextendable FD must return nil, got %v", r)
	}
	r, err = relatrust.RepairWithBudget(in, sigma, 1, relatrust.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil || r.Data.NumChanges() > 1 {
		t.Fatalf("τ=1 repair broken: %+v", r)
	}
	if _, err := relatrust.RepairWithBudget(in, sigma, -1, relatrust.Options{}); err == nil {
		t.Error("negative τ must error")
	}
}

func TestFacadeRangeAndWeights(t *testing.T) {
	in, sigma := load(t)
	for _, w := range []relatrust.WeightFunc{
		relatrust.AttrCountWeights(),
		relatrust.DistinctCountWeights(in),
		relatrust.EntropyWeights(in),
	} {
		rs, err := relatrust.SuggestRepairsInRange(in, sigma, 0, 1, relatrust.Options{Weights: w})
		if err != nil {
			t.Fatalf("%T: %v", w, err)
		}
		if len(rs) == 0 {
			t.Fatalf("%T: no repairs", w)
		}
	}
}

func TestFacadeBestFirstOption(t *testing.T) {
	in, sigma := load(t)
	a, err := relatrust.RepairWithBudget(in, sigma, 1, relatrust.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := relatrust.RepairWithBudget(in, sigma, 1, relatrust.Options{BestFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.FDCost != b.FDCost {
		t.Errorf("A* and best-first disagree on the optimum: %v vs %v", a.FDCost, b.FDCost)
	}
	// Regression: Options{BestFirst: true} with every other knob at its
	// default used to be indistinguishable from a zero-value config and was
	// silently rewritten to A*. The engine is observable through GCCalls —
	// best-first never evaluates the heuristic, A* must.
	if b.Stats.GCCalls != 0 {
		t.Errorf("BestFirst repair reports %d gc calls; the A* heuristic ran", b.Stats.GCCalls)
	}
	if a.Stats.GCCalls == 0 {
		t.Error("default (A*) repair reports 0 gc calls; best-first ran instead")
	}
	// The knob must also be orthogonal to Workers (it used to flip the
	// algorithm depending on whether Workers was zero).
	for _, workers := range []int{1, 4} {
		c, err := relatrust.RepairWithBudget(in, sigma, 1, relatrust.Options{BestFirst: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if c.Stats.GCCalls != 0 {
			t.Errorf("BestFirst with Workers=%d reports %d gc calls; the A* heuristic ran", workers, c.Stats.GCCalls)
		}
	}
}

func TestFacadeSchemaConstruction(t *testing.T) {
	s, err := relatrust.NewSchema("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	in := relatrust.NewInstance(s)
	if err := in.AppendConsts("1", "2"); err != nil {
		t.Fatal(err)
	}
	f, err := relatrust.ParseFD(s, "A->B")
	if err != nil {
		t.Fatal(err)
	}
	if !relatrust.Satisfies(in, relatrust.FDSet{f}) {
		t.Error("single tuple always satisfies")
	}
	var sb strings.Builder
	if err := relatrust.WriteCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "A,B\n") {
		t.Errorf("CSV output %q", sb.String())
	}
}

// TestFacadeSharedSession: repeated facade calls through one
// Options.Session must return exactly what independent calls return —
// the shared engine reuses warm analysis arenas without changing any
// result — and sampling through the same session must stay valid.
func TestFacadeSharedSession(t *testing.T) {
	in, sigma := load(t)
	sess := relatrust.NewSession(in)
	shared := relatrust.Options{Seed: 1, Session: sess}

	dpFresh, err := relatrust.MaxBudget(in, sigma, relatrust.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dpShared, err := relatrust.MaxBudget(in, sigma, shared)
	if err != nil {
		t.Fatal(err)
	}
	if dpFresh != dpShared {
		t.Fatalf("MaxBudget with shared session = %d, fresh = %d", dpShared, dpFresh)
	}

	fresh, err := relatrust.SuggestRepairs(in, sigma, relatrust.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := relatrust.SuggestRepairs(in, sigma, shared)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(fresh) {
			t.Fatalf("round %d: %d repairs via shared session, %d fresh", round, len(got), len(fresh))
		}
		for i := range got {
			if got[i].FDCost != fresh[i].FDCost || got[i].DeltaP != fresh[i].DeltaP ||
				got[i].Data.NumChanges() != fresh[i].Data.NumChanges() ||
				!got[i].Sigma.Equal(fresh[i].Sigma) {
				t.Fatalf("round %d repair %d diverges: shared %v, fresh %v", round, i, got[i], fresh[i])
			}
		}
	}

	samples, err := relatrust.SampleRepairs(in, sigma, 2, shared)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if !relatrust.Satisfies(s.Instance, sigma) {
			t.Fatal("sampled repair via shared session violates Σ")
		}
	}
}
