package relatrust_test

// Pins the resume contract the durable job tier (internal/jobs,
// internal/server) builds on: for any prefix of an uninterrupted frontier,
// re-running FrontierRange with tauHigh = prefix[last].DeltaP − 1 yields
// exactly the remaining points of that frontier. This is what makes a
// crash-resumed sweep's concatenated stream identical to an uninterrupted
// one — every split point is exercised, on both the CSV fixture and a
// generated census workload.

import (
	"context"
	"fmt"
	"testing"

	"relatrust"

	"relatrust/internal/experiments"
	"relatrust/internal/gen"
)

func TestFrontierRangeResumesAnyPrefix(t *testing.T) {
	type fixture struct {
		name  string
		in    *relatrust.Instance
		sigma relatrust.FDSet
	}
	var fixtures []fixture

	in, sigma := loadMulti(t)
	fixtures = append(fixtures, fixture{"csv", in, sigma})

	spec := gen.SubSpec(gen.CensusSpec(), 10)
	w, err := experiments.MakeWorkload(spec, gen.TwoFDs(spec), 300, 0.34, 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"census", w.Dirty, w.SigmaD})

	for _, f := range fixtures {
		t.Run(f.name, func(t *testing.T) {
			rp, err := relatrust.NewRepairer(f.in, f.sigma, relatrust.Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			full := collect(t, rp)
			if len(full) < 2 {
				t.Fatalf("fixture frontier has %d points; the split test needs ≥ 2", len(full))
			}
			for k := 0; k < len(full); k++ {
				t.Run(fmt.Sprintf("split=%d", k), func(t *testing.T) {
					// A sweep interrupted after emitting full[:k+1] resumes
					// over [0, full[k].DeltaP-1]; a last point already at
					// δP = 0 means the frontier was complete.
					hi := full[k].DeltaP - 1
					var rest []*relatrust.Repair
					if hi >= 0 {
						for r, err := range rp.FrontierRange(context.Background(), 0, hi) {
							if err != nil {
								t.Fatal(err)
							}
							rest = append(rest, r)
						}
					}
					if len(rest) != len(full)-(k+1) {
						t.Fatalf("resume after point %d yielded %d repairs, want %d",
							k, len(rest), len(full)-(k+1))
					}
					for i, r := range rest {
						if !equalRepair(r, full[k+1+i]) {
							t.Errorf("resumed point %d diverges from uninterrupted point %d", i, k+1+i)
						}
					}
				})
			}
		})
	}
}
