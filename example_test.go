package relatrust_test

// Runnable godoc examples for the public API. Each output block is
// verified by go test, so the documentation cannot drift from behavior.

import (
	"context"
	"fmt"
	"strings"

	"relatrust"
)

const exampleCSV = `Dept,Manager,Floor
sales,pat,2
sales,sam,2
eng,lee,3
`

func ExampleRepairer_Frontier() {
	inst, _ := relatrust.ReadCSV(strings.NewReader(exampleCSV))
	sigma, _ := relatrust.ParseFDs(inst.Schema, "Dept->Manager")

	// The Repairer validates once and streams the Pareto frontier; pass a
	// cancellable context to make long sweeps interruptible.
	rp, _ := relatrust.NewRepairer(inst, sigma, relatrust.Options{
		Weights: relatrust.AttrCountWeights(),
		Seed:    1,
	})
	for r, err := range rp.Frontier(context.Background()) {
		if err != nil {
			fmt.Println("sweep failed:", err)
			return
		}
		fmt.Printf("τ≤%d: Σ'={%s}, %d cell change(s)\n",
			r.Tau, r.Sigma.Format(inst.Schema), r.Data.NumChanges())
	}
	// Output:
	// τ≤1: Σ'={Dept->Manager}, 1 cell change(s)
}

func ExampleSuggestRepairs() {
	inst, _ := relatrust.ReadCSV(strings.NewReader(exampleCSV))
	sigma, _ := relatrust.ParseFDs(inst.Schema, "Dept->Manager")

	repairs, _ := relatrust.SuggestRepairs(inst, sigma, relatrust.Options{
		Weights: relatrust.AttrCountWeights(),
		Seed:    1,
	})
	for _, r := range repairs {
		fmt.Printf("τ≤%d: Σ'={%s}, %d cell change(s)\n",
			r.Tau, r.Sigma.Format(inst.Schema), r.Data.NumChanges())
	}
	// Output:
	// τ≤1: Σ'={Dept->Manager}, 1 cell change(s)
}

func ExampleRepairWithBudget() {
	inst, _ := relatrust.ReadCSV(strings.NewReader(exampleCSV))
	sigma, _ := relatrust.ParseFDs(inst.Schema, "Dept->Manager")

	// τ=0 forbids data changes: with Floor available to append, the FD
	// itself must be relaxed — but the violating pair shares the floor,
	// so no relaxation exists and the answer is φ (nil).
	r, _ := relatrust.RepairWithBudget(inst, sigma, 0, relatrust.Options{})
	fmt.Println("repair at τ=0:", r)

	// τ=1 allows one cell change and keeps the FD.
	r, _ = relatrust.RepairWithBudget(inst, sigma, 1, relatrust.Options{Seed: 1})
	fmt.Printf("repair at τ=1: %d change(s), Σ' unchanged: %v\n",
		r.Data.NumChanges(), r.Sigma.Format(inst.Schema) == "Dept->Manager")
	// Output:
	// repair at τ=0: <nil>
	// repair at τ=1: 1 change(s), Σ' unchanged: true
}

func ExampleSatisfies() {
	inst, _ := relatrust.ReadCSV(strings.NewReader(exampleCSV))
	sigma, _ := relatrust.ParseFDs(inst.Schema, "Dept->Manager; Dept->Floor")
	fmt.Println(relatrust.Satisfies(inst, sigma))
	fmt.Println(len(relatrust.Violations(inst, sigma, 0)))
	// Output:
	// false
	// 1
}

func ExampleMaxBudget() {
	inst, _ := relatrust.ReadCSV(strings.NewReader(exampleCSV))
	sigma, _ := relatrust.ParseFDs(inst.Schema, "Dept->Manager")
	dp, _ := relatrust.MaxBudget(inst, sigma, relatrust.Options{})
	fmt.Println(dp)
	// Output:
	// 1
}
