module relatrust

go 1.23
