module relatrust

go 1.22
