package relatrust_test

// One benchmark per evaluation figure of the paper (Figures 7-13 — the
// evaluation has no numbered tables; Figure 8 is its results table), plus
// micro-benchmarks for the hot paths. Each figure benchmark regenerates
// the figure's series through the same harness the cmd/experiments binary
// uses and reports headline numbers as custom metrics.
//
// Benchmark scale: the harnesses default to tuple counts scaled down from
// the paper's (Section 8 ran up to 60k tuples for tens of thousands of
// seconds); RELATRUST_BENCH_SCALE overrides the multiplier.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"relatrust"

	"relatrust/internal/conflict"
	"relatrust/internal/experiments"
	"relatrust/internal/fd"
	"relatrust/internal/gen"
	"relatrust/internal/relation"
	"relatrust/internal/repair"
	"relatrust/internal/search"
	"relatrust/internal/session"
	"relatrust/internal/weights"
)

func benchConfig() experiments.Config {
	scale := 0.25
	if s := os.Getenv("RELATRUST_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	return experiments.Config{Scale: scale, Seed: 42}
}

// BenchmarkFigure7 regenerates Figure 7: repair quality across the
// relative-trust spectrum on four error-rate datasets.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, p := range points {
			if p.Combined > best {
				best = p.Combined
			}
		}
		b.ReportMetric(best, "best-combined-F")
		b.ReportMetric(float64(len(points)), "points")
	}
}

// BenchmarkFigure8 regenerates Figure 8: best achievable quality,
// uniform-cost baseline versus relative-trust repairs.
func BenchmarkFigure8(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var rt, uc float64
		for _, r := range rows {
			f := r.Quality.CombinedF()
			if r.System == "relative-trust" {
				rt += f
			} else {
				uc += f
			}
		}
		b.ReportMetric(rt/4, "relative-trust-avg-F")
		b.ReportMetric(uc/4, "uniform-cost-avg-F")
	}
}

// BenchmarkFigure9 regenerates Figure 9: search time and visited states
// versus the number of tuples (A* vs Best-First).
func BenchmarkFigure9(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedup(b, points)
	}
}

// BenchmarkFigure10 regenerates Figure 10: search time versus the number
// of attributes.
func BenchmarkFigure10(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedup(b, points)
	}
}

// BenchmarkFigure11 regenerates Figure 11: search time versus the number
// of FDs (replicated FD).
func BenchmarkFigure11(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedup(b, points)
	}
}

// BenchmarkFigure12 regenerates Figure 12: the effect of τr on search
// effort.
func BenchmarkFigure12(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var astar, bfirst float64
		for _, p := range points {
			if p.Algo == "A*" {
				astar += p.Seconds
			} else {
				bfirst += p.Seconds
			}
		}
		b.ReportMetric(astar, "astar-total-sec")
		b.ReportMetric(bfirst, "bestfirst-total-sec")
	}
}

// BenchmarkFigure13 regenerates Figure 13: Range-Repair versus
// Sampling-Repair for multi-repair generation.
func BenchmarkFigure13(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var rangeSec, sampleSec float64
		for _, p := range points {
			if p.Method == "Range-Repair" {
				rangeSec += p.Seconds
			} else {
				sampleSec += p.Seconds
			}
		}
		b.ReportMetric(rangeSec, "range-total-sec")
		b.ReportMetric(sampleSec, "sampling-total-sec")
		if rangeSec > 0 {
			b.ReportMetric(sampleSec/rangeSec, "sampling/range")
		}
	}
}

func reportSpeedup(b *testing.B, points []experiments.PerfPoint) {
	var astar, bfirst float64
	for _, p := range points {
		if p.Seconds < 0 {
			continue
		}
		if p.Algo == "A*" {
			astar += p.Seconds
		} else {
			bfirst += p.Seconds
		}
	}
	b.ReportMetric(astar, "astar-total-sec")
	b.ReportMetric(bfirst, "bestfirst-total-sec")
	if astar > 0 {
		b.ReportMetric(bfirst/astar, "bestfirst/astar")
	}
}

// --- micro-benchmarks for the hot paths ---

func benchWorkload(b *testing.B, n int) (*relatrust.Instance, fd.Set) {
	b.Helper()
	spec := gen.SubSpec(gen.CensusSpec(), 12)
	sigma := gen.TwoFDs(spec)
	w, err := experiments.MakeWorkload(spec, sigma, n, 0.34, 0.01, 42)
	if err != nil {
		b.Fatal(err)
	}
	return w.Dirty, w.SigmaD
}

// BenchmarkConflictAnalysis measures building the violation clusters.
func BenchmarkConflictAnalysis(b *testing.B) {
	in, sigma := benchWorkload(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conflict.New(in, sigma)
	}
}

// BenchmarkCoverSize measures one vertex-cover query (the goal test the
// search runs per visited state).
func BenchmarkCoverSize(b *testing.B) {
	in, sigma := benchWorkload(b, 10000)
	a := conflict.New(in, sigma)
	a.CoverSize(nil) // warm the query scratch so steady state is measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.CoverSize(nil)
	}
}

// BenchmarkCoverVector measures the cover query for a non-trivial LHS
// extension vector — the exact shape of the per-state goal test A*-Repair
// issues up to MaxVisited times. Steady-state queries on a prebuilt
// Analysis must not allocate.
func BenchmarkCoverVector(b *testing.B) {
	in, sigma := benchWorkload(b, 10000)
	a := conflict.New(in, sigma)
	ext := make([]relation.AttrSet, len(sigma))
	for i, f := range sigma {
		ext[i] = f.LHS.Add(8 + i) // one appended attribute per FD, as mid-search states have
	}
	a.CoverSize(ext) // warm the query scratch so steady state is measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.CoverSize(ext)
	}
}

// BenchmarkFDSearch measures a complete A* FD-modification search at the
// n=10k workload, swept over the parallel engine's worker counts and,
// at Workers 4, over the partition cache. The searcher (conflict
// analysis, difference sets, heuristic) is built once: the sweep isolates
// the search loop the Workers knob parallelizes. Results are bit-identical
// across the entire sweep; only wall-clock and refinement effort differ —
// the cache=on runs report their hit rate and refinement steps per search
// as custom metrics.
func BenchmarkFDSearch(b *testing.B) {
	in, sigma := benchWorkload(b, 10000)
	type cfg struct {
		workers int
		noCache bool
	}
	cfgs := []cfg{{1, false}, {2, false}, {4, false}, {4, true}, {8, false}}
	for _, c := range cfgs {
		name := fmt.Sprintf("workers=%d", c.workers)
		if c.workers == 4 {
			name = fmt.Sprintf("workers=%d/cache=%v", c.workers, !c.noCache)
		}
		b.Run(name, func(b *testing.B) {
			opt := search.DefaultOptions()
			opt.Workers = c.workers
			opt.NoPartitionCache = c.noCache
			s := search.NewSearcher(conflict.New(in, sigma), weights.NewDistinctCount(in), opt)
			tau := s.DeltaPOriginal() / 10
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Find(context.Background(), tau); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if c.workers > 1 {
				st := s.CoverCacheStats()
				b.ReportMetric(float64(st.RefineSteps)/float64(b.N), "refine-steps/op")
				if !c.noCache {
					b.ReportMetric(100*st.HitRate(), "cache-hit-%")
				}
			}
		})
	}
}

// benchBlockWorkload builds an n-row instance whose Blk,A->B violations
// stay inside 4-row blocks, so the conflict graph decomposes into ~n/4
// small components — the shape the component decomposition is built for
// (the census workload's FDs connect everything into one component).
func benchBlockWorkload(b *testing.B, n int) (*relatrust.Instance, fd.Set) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	in := relation.NewInstance(relation.MustSchema("Blk", "A", "B", "C", "D", "E", "F"))
	for t := 0; t < n; t++ {
		err := in.AppendConsts(
			fmt.Sprintf("b%d", t/4),
			fmt.Sprintf("v%d", rng.Intn(2)),
			fmt.Sprintf("v%d", rng.Intn(2)),
			fmt.Sprintf("v%d", rng.Intn(3)),
			fmt.Sprintf("v%d", rng.Intn(3)),
			fmt.Sprintf("v%d", rng.Intn(3)),
			fmt.Sprintf("v%d", rng.Intn(3)),
		)
		if err != nil {
			b.Fatal(err)
		}
	}
	return in, fd.Set{fd.MustNew(relation.NewAttrSet(0, 1), 2)}
}

// BenchmarkComponentSweep measures a complete A* search at n=100k with
// the conflict-hypergraph decomposition on versus off, Workers fixed at 4,
// on two workload shapes: the census workload (whose FDs connect all
// tuples into one component — the decomposition's worst case, where only
// the relevant-attribute memo helps) and a blocked workload that splits
// into tens of thousands of small components (its best case). Results are
// bit-identical either way — the decomposition only changes how each
// per-state cover query is evaluated (per-component deltas against
// memoized projections instead of one monolithic two-pass scan) — so the
// comparison isolates the cover-query work the decomposition removes.
func BenchmarkComponentSweep(b *testing.B) {
	cin, csigma := benchWorkload(b, 100000)
	bin, bsigma := benchBlockWorkload(b, 100000)
	workloads := []struct {
		name  string
		in    *relatrust.Instance
		sigma fd.Set
	}{{"census", cin, csigma}, {"blocked", bin, bsigma}}
	for _, w := range workloads {
		for _, decomp := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/decomp=%v", w.name, decomp), func(b *testing.B) {
				opt := search.DefaultOptions()
				opt.Workers = 4
				opt.NoDecomposition = !decomp
				s := search.NewSearcher(conflict.New(w.in, w.sigma), weights.NewDistinctCount(w.in), opt)
				dp := s.DeltaPOriginal()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// The census search is a single-τ Find (a full-spectrum
					// sweep there takes minutes); the blocked workload's
					// frontier is cheap enough to sweep end to end.
					var err error
					if w.name == "census" {
						_, err = s.Find(context.Background(), dp/10)
					} else {
						_, err = s.FindRange(context.Background(), 0, dp)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := s.CoverCacheStats()
				b.ReportMetric(float64(st.RefineSteps)/float64(b.N), "refine-steps/op")
				if decomp {
					cs := s.ComponentStats()
					b.ReportMetric(float64(cs.Components), "components")
					b.ReportMetric(float64(cs.LargestComponent), "largest-component-tuples")
					b.ReportMetric(float64(cs.ParallelEvals)/float64(b.N), "parallel-evals/op")
				}
			})
		}
	}
}

// BenchmarkComponentSweepXL runs the decomposed search on the blocked
// workload at n=1,000,000 — a scale at which the monolithic per-state
// cover query (a two-pass scan over every violation cluster) makes the
// sweep impractical on the benchmark box. Gated behind
// RELATRUST_BENCH_XL=1; the point of the benchmark is that the decomposed
// sweep *completes*, and its headline numbers are recorded in
// BENCH_components.json.
func BenchmarkComponentSweepXL(b *testing.B) {
	if os.Getenv("RELATRUST_BENCH_XL") == "" {
		b.Skip("set RELATRUST_BENCH_XL=1 to run the 1M-tuple sweep")
	}
	in, sigma := benchBlockWorkload(b, 1000000)
	for _, decomp := range []bool{false, true} {
		b.Run(fmt.Sprintf("decomp=%v", decomp), func(b *testing.B) {
			opt := search.DefaultOptions()
			opt.Workers = 4
			opt.NoDecomposition = !decomp
			s := search.NewSearcher(conflict.New(in, sigma), weights.NewDistinctCount(in), opt)
			dp := s.DeltaPOriginal()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.FindRange(context.Background(), 0, dp); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := s.CoverCacheStats()
			b.ReportMetric(float64(st.RefineSteps)/float64(b.N), "refine-steps/op")
			if decomp {
				cs := s.ComponentStats()
				b.ReportMetric(float64(cs.Components), "components")
				b.ReportMetric(float64(cs.LargestComponent), "largest-component-tuples")
			}
		})
	}
}

// BenchmarkSessionReuse measures acquiring a warm analysis from a session
// engine plus one cover query — the per-iteration cost Sampling-Repair and
// the baseline sweep pay after their first τ. Against the
// BenchmarkConflictAnalysis baseline (a from-scratch conflict.New of the
// same workload, ~dozens of allocs), a warm Acquire/Release cycle reuses
// the pooled fork scratch and allocates nothing.
func BenchmarkSessionReuse(b *testing.B) {
	in, sigma := benchWorkload(b, 10000)
	eng := session.New(in)
	a := eng.Acquire(sigma) // build the root and grow the pooled scratch
	a.CoverSize(nil)
	eng.Release(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := eng.Acquire(sigma)
		a.CoverSize(nil)
		eng.Release(a)
	}
}

// BenchmarkAnalysisFork measures forking a worker's analysis off a
// prebuilt one plus a cover query — the per-worker setup cost of the
// parallel search engine. With Release recycling scratch through the
// fork pool, the steady state allocates nothing.
func BenchmarkAnalysisFork(b *testing.B) {
	in, sigma := benchWorkload(b, 10000)
	a := conflict.New(in, sigma)
	f := a.Fork()
	f.CoverSize(nil) // grow the pooled scratch to the working-set size
	f.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := a.Fork()
		g.CoverSize(nil)
		g.Release()
	}
}

// BenchmarkRepairData measures materializing a data repair.
func BenchmarkRepairData(b *testing.B) {
	in, sigma := benchWorkload(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repair.RepairData(in, sigma, nil, int64(i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuggestRepairs measures the full public-API pipeline — analyze,
// search the whole trust range, materialize every repair — swept over the
// search worker counts. n=2000 keeps one full-spectrum sweep around ten
// seconds on one core; the FD search dominates, so the Workers knob is
// visible end to end.
func BenchmarkSuggestRepairs(b *testing.B) {
	in, sigma := benchWorkload(b, 2000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := relatrust.SuggestRepairs(in, sigma, relatrust.Options{Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
