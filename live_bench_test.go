package relatrust_test

// BenchmarkLiveUpdates measures what the live mutation tier saves: the
// per-batch cost of internal/live's incremental maintenance (cluster
// splice + evaluator splice + seeded engine) versus the status quo it
// replaces — rebuilding the conflict analysis from scratch after every
// change. Workload: the blocked shape at n=100k (violations confined to
// 4-row blocks), batches of 16 row ops (12 updates, 2 inserts, 2
// swap-remove deletes).

import (
	"math/rand"
	"testing"

	"relatrust/internal/components"
	"relatrust/internal/conflict"
	"relatrust/internal/live"
	"relatrust/internal/relation"
)

// liveBenchBatch builds one mutation batch against the current instance:
// updates rewrite the B and D attributes of random rows, inserts join an
// existing block (keeping new conflicts as local as the workload's), and
// deletes stay below n-16 so every index in the batch remains valid under
// the batch's own renumbering.
func liveBenchBatch(rng *rand.Rand, in *relation.Instance) []live.Op {
	n := in.N()
	ops := make([]live.Op, 0, 16)
	pick := func() int { return rng.Intn(n - 16) }
	for i := 0; i < 12; i++ {
		r := pick()
		nt := in.Tuples[r].Clone()
		nt[2] = relation.Const("v" + string(rune('0'+rng.Intn(3))))
		nt[4] = relation.Const("v" + string(rune('0'+rng.Intn(3))))
		ops = append(ops, live.Op{Kind: live.OpUpdate, Row: r, Tuple: nt})
	}
	for i := 0; i < 2; i++ {
		nt := in.Tuples[pick()].Clone()
		nt[2] = relation.Const("v" + string(rune('0'+rng.Intn(3))))
		ops = append(ops, live.Op{Kind: live.OpInsert, Tuple: nt})
	}
	for i := 0; i < 2; i++ {
		ops = append(ops, live.Op{Kind: live.OpDelete, Row: pick()})
	}
	return ops
}

// applyOpsNaive replays a batch with the pre-live-tier semantics: mutate
// the instance in place and let the caller pay for a full re-analysis.
func applyOpsNaive(in *relation.Instance, ops []live.Op) {
	for _, op := range ops {
		switch op.Kind {
		case live.OpInsert:
			in.Tuples = append(in.Tuples, op.Tuple)
		case live.OpUpdate:
			in.Tuples[op.Row] = op.Tuple
		case live.OpDelete:
			last := in.N() - 1
			in.Tuples[op.Row] = in.Tuples[last]
			in.Tuples = in.Tuples[:last]
		}
	}
}

func BenchmarkLiveUpdates(b *testing.B) {
	const n = 100000

	b.Run("incremental", func(b *testing.B) {
		in, sigma := benchBlockWorkload(b, n)
		tbl := live.NewTable(in, 0)
		_, eng, _ := tbl.Snapshot()
		// Materialize the root and its component evaluator (what a first
		// decomposed sweep does), so iterations measure steady-state
		// maintenance including the evaluator splice.
		eng.Release(eng.Acquire(sigma))
		eng.CoverEvaluator(sigma)
		rng := rand.New(rand.NewSource(7))
		var dirtied int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur, _, _ := tbl.Snapshot()
			res, err := tbl.Apply(liveBenchBatch(rng, cur), nil)
			if err != nil {
				b.Fatal(err)
			}
			dirtied += int64(res.ComponentsDirtied)
		}
		b.StopTimer()
		b.ReportMetric(float64(dirtied)/float64(b.N), "components-dirtied/op")
	})

	b.Run("rebuild", func(b *testing.B) {
		in, sigma := benchBlockWorkload(b, n)
		rng := rand.New(rand.NewSource(7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			applyOpsNaive(in, liveBenchBatch(rng, in))
			in.InvalidateCodes()
			// The server's sweeps run decomposed, so the status quo pays for
			// the analysis AND a fresh component evaluator per change.
			components.NewEvaluator(conflict.New(in, sigma))
		}
	})
}
